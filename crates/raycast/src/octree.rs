//! Min-max octree over classified opacity.
//!
//! Ray casters accelerate traversal with a spatial hierarchy: each octree
//! cell stores the maximum opacity beneath it, so a ray can leap over
//! transparent regions instead of sampling them. This is the coherence
//! structure the paper contrasts with shear-warp's run-length encoding —
//! it must be *re-traversed for every ray*, which is exactly the "looping
//! time" overhead Figure 2 shows dominating the ray caster.

use swr_volume::ClassifiedVolume;

/// A complete octree of maximum opacities with power-of-two cells.
///
/// Level 0 cells are single voxels (stored implicitly in the volume); stored
/// levels start at cell edge 2 and double up to the root.
#[derive(Debug, Clone)]
pub struct MaxOctree {
    dims: [usize; 3],
    /// `levels[l]` covers cells of edge `2^(l+1)`.
    levels: Vec<Level>,
}

#[derive(Debug, Clone)]
struct Level {
    /// Cells per axis.
    n: [usize; 3],
    /// Cell edge length in voxels.
    edge: usize,
    max_alpha: Vec<u8>,
}

impl Level {
    #[inline]
    fn idx(&self, cx: usize, cy: usize, cz: usize) -> usize {
        (cz * self.n[1] + cy) * self.n[0] + cx
    }

    #[inline]
    fn get(&self, x: usize, y: usize, z: usize) -> u8 {
        let cx = (x / self.edge).min(self.n[0] - 1);
        let cy = (y / self.edge).min(self.n[1] - 1);
        let cz = (z / self.edge).min(self.n[2] - 1);
        self.max_alpha[self.idx(cx, cy, cz)]
    }
}

impl MaxOctree {
    /// Builds the octree from a classified volume.
    ///
    /// Cell maxima are taken over the cell *dilated by one voxel*, so that a
    /// "transparent" cell guarantees every trilinear sample whose base voxel
    /// lies in the cell is fully transparent — skipping is then exact, not
    /// just approximate.
    pub fn build(vol: &ClassifiedVolume) -> Self {
        let dims = vol.dims();
        let dilated = dilate_alpha(vol);
        let max_dim = dims.iter().copied().max().unwrap();
        let mut levels = Vec::new();
        let mut edge = 2usize;
        while edge <= max_dim.next_power_of_two() {
            let n = [
                dims[0].div_ceil(edge),
                dims[1].div_ceil(edge),
                dims[2].div_ceil(edge),
            ];
            let mut max_alpha = vec![0u8; n[0] * n[1] * n[2]];
            if edge == 2 {
                // Aggregate dilated voxel opacities directly.
                let mut idx = 0;
                for z in 0..dims[2] {
                    for y in 0..dims[1] {
                        for x in 0..dims[0] {
                            let a = dilated[idx];
                            idx += 1;
                            let i = ((z / 2) * n[1] + y / 2) * n[0] + x / 2;
                            if a > max_alpha[i] {
                                max_alpha[i] = a;
                            }
                        }
                    }
                }
            } else {
                // Aggregate the previous level's cells.
                let prev: &Level = levels.last().unwrap();
                for cz in 0..prev.n[2] {
                    for cy in 0..prev.n[1] {
                        for cx in 0..prev.n[0] {
                            let a = prev.max_alpha[prev.idx(cx, cy, cz)];
                            let i = ((cz / 2) * n[1] + cy / 2) * n[0] + cx / 2;
                            if a > max_alpha[i] {
                                max_alpha[i] = a;
                            }
                        }
                    }
                }
            }
            levels.push(Level { n, edge, max_alpha });
            if n == [1, 1, 1] {
                break;
            }
            edge *= 2;
        }
        MaxOctree { dims, levels }
    }

    /// Number of stored levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Volume dimensions this octree covers.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Returns the edge length of the largest cell containing voxel
    /// `(x, y, z)` whose max opacity is below `threshold` — i.e. how far the
    /// region around this voxel is known-transparent — or `None` if even the
    /// 2-cell is (possibly) non-transparent. Also reports how many levels
    /// were examined (traversal work).
    #[inline]
    pub fn transparent_cell_edge(
        &self,
        x: usize,
        y: usize,
        z: usize,
        threshold: u8,
    ) -> (Option<usize>, u32) {
        debug_assert!(x < self.dims[0] && y < self.dims[1] && z < self.dims[2]);
        // Walk from the root down to the smallest transparent cell; a real
        // ray caster descends the tree, so we count visited levels.
        let mut best = None;
        let mut visited = 0u32;
        for level in self.levels.iter().rev() {
            visited += 1;
            if level.get(x, y, z) < threshold {
                best = Some(level.edge);
                break; // largest transparent cell found
            }
        }
        (best, visited)
    }

    /// Address of the octree node covering `(x, y, z)` at the coarsest level
    /// — used for memory tracing of octree reads.
    #[inline]
    pub fn node_addr(&self, level: usize, x: usize, y: usize, z: usize) -> usize {
        let l = &self.levels[level];
        let cx = (x / l.edge).min(l.n[0] - 1);
        let cy = (y / l.edge).min(l.n[1] - 1);
        let cz = (z / l.edge).min(l.n[2] - 1);
        &l.max_alpha[l.idx(cx, cy, cz)] as *const u8 as usize
    }
}

/// Per-voxel opacity, dilated by a 1-voxel max filter along each axis (the
/// trilinear interpolation footprint).
fn dilate_alpha(vol: &ClassifiedVolume) -> Vec<u8> {
    let [nx, ny, nz] = vol.dims();
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut a: Vec<u8> = vol.voxels().iter().map(|v| v.a).collect();
    let mut b = a.clone();
    // X pass.
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut m = a[idx(x, y, z)];
                if x > 0 {
                    m = m.max(a[idx(x - 1, y, z)]);
                }
                if x + 1 < nx {
                    m = m.max(a[idx(x + 1, y, z)]);
                }
                b[idx(x, y, z)] = m;
            }
        }
    }
    // Y pass.
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut m = b[idx(x, y, z)];
                if y > 0 {
                    m = m.max(b[idx(x, y - 1, z)]);
                }
                if y + 1 < ny {
                    m = m.max(b[idx(x, y + 1, z)]);
                }
                a[idx(x, y, z)] = m;
            }
        }
    }
    // Z pass.
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut m = a[idx(x, y, z)];
                if z > 0 {
                    m = m.max(a[idx(x, y, z - 1)]);
                }
                if z + 1 < nz {
                    m = m.max(a[idx(x, y, z + 1)]);
                }
                b[idx(x, y, z)] = m;
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_volume::{ClassifiedVolume, RgbaVoxel};

    fn vol_from(dims: [usize; 3], f: impl Fn(usize, usize, usize) -> u8) -> ClassifiedVolume {
        let mut v = Vec::new();
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    let a = f(x, y, z);
                    v.push(RgbaVoxel {
                        r: a,
                        g: a,
                        b: a,
                        a,
                    });
                }
            }
        }
        ClassifiedVolume::from_raw(dims, v)
    }

    #[test]
    fn empty_volume_is_transparent_at_the_root() {
        let v = vol_from([16, 16, 16], |_, _, _| 0);
        let o = MaxOctree::build(&v);
        let (edge, visited) = o.transparent_cell_edge(5, 5, 5, 1);
        assert_eq!(edge, Some(16));
        assert_eq!(visited, 1, "root alone suffices");
    }

    #[test]
    fn solid_volume_has_no_transparent_cell() {
        let v = vol_from([8, 8, 8], |_, _, _| 255);
        let o = MaxOctree::build(&v);
        let (edge, visited) = o.transparent_cell_edge(3, 3, 3, 1);
        assert_eq!(edge, None);
        assert_eq!(visited as usize, o.depth(), "must descend the whole tree");
    }

    #[test]
    fn single_voxel_taints_its_ancestors_only() {
        let v = vol_from([16, 16, 16], |x, y, z| {
            (x == 1 && y == 1 && z == 1) as u8 * 255
        });
        let o = MaxOctree::build(&v);
        // Near the voxel: no transparent cell at any level containing it.
        assert_eq!(o.transparent_cell_edge(0, 0, 0, 1).0, None);
        // Far corner: the opposite half of the volume is clean at edge 8.
        let (edge, _) = o.transparent_cell_edge(15, 15, 15, 1);
        assert_eq!(edge, Some(8));
    }

    #[test]
    fn non_power_of_two_dims_are_covered() {
        let v = vol_from([12, 10, 6], |x, _, _| (x == 11) as u8 * 200);
        let o = MaxOctree::build(&v);
        // Every voxel is queryable.
        for &(x, y, z) in &[(0, 0, 0), (11, 9, 5), (6, 5, 3)] {
            let _ = o.transparent_cell_edge(x, y, z, 1);
        }
        // The opaque column is found.
        assert_eq!(o.transparent_cell_edge(11, 0, 0, 1).0, None);
    }

    #[test]
    fn threshold_is_respected() {
        let v = vol_from([8, 8, 8], |_, _, _| 10);
        let o = MaxOctree::build(&v);
        assert_eq!(o.transparent_cell_edge(4, 4, 4, 11).0, Some(8));
        assert_eq!(o.transparent_cell_edge(4, 4, 4, 10).0, None);
    }
}
