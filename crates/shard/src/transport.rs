//! Pluggable byte transports between the coordinator and its shard workers,
//! plus the process-spawning glue.
//!
//! Both transports present the same shape — a `(reader, writer)` pair of
//! blocking byte streams carrying [`crate::codec`] frames:
//!
//! * **Shared-memory ring** ([`crate::shm`]) — the fast path. One memfd per
//!   worker holding two SPSC rings; the fd is inherited through spawn and
//!   its number travels in `SWR_SHARD_SHM_FD`.
//! * **Unix-domain socket** — the portable/debug path. One listener per
//!   worker; the socket path travels in `SWR_SHARD_SOCK`.
//!
//! Worker death shows up as EOF on the socket transport naturally; on the
//! shm transport the coordinator's child watcher closes the rings when
//! `try_wait` reports the exit, which wakes any blocked reader with EOF.

use crate::shm::{self, ShmMap, ShmSide, DEFAULT_RING_CAP, ENV_SHM_CAP, ENV_SHM_FD};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swr_error::Error;

/// Environment variable carrying the worker's shard id.
pub const ENV_SHARD_ID: &str = "SWR_SHARD_ID";
/// Environment variable selecting the transport (`shm` | `socket`).
pub const ENV_TRANSPORT: &str = "SWR_SHARD_TRANSPORT";
/// Environment variable carrying the socket path (socket transport).
pub const ENV_SOCK: &str = "SWR_SHARD_SOCK";
/// Environment variable overriding worker-binary resolution.
pub const ENV_WORKER_BIN: &str = "SWR_SHARD_BIN";

/// Transport selection for the sharded render path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardTransport {
    /// Shared-memory rings over an inherited memfd (Linux; the fast path).
    #[default]
    Shm,
    /// Unix-domain sockets (portable, observable with standard tooling).
    Socket,
}

impl ShardTransport {
    /// Parses `shm` | `socket`.
    pub fn parse(s: &str) -> Result<ShardTransport, Error> {
        match s {
            "shm" => Ok(ShardTransport::Shm),
            "socket" => Ok(ShardTransport::Socket),
            other => Err(Error::InvalidConfig {
                reason: format!("unknown shard transport {other:?} (expected shm|socket)"),
            }),
        }
    }

    /// The name `parse` accepts.
    pub fn name(self) -> &'static str {
        match self {
            ShardTransport::Shm => "shm",
            ShardTransport::Socket => "socket",
        }
    }
}

impl std::fmt::Display for ShardTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One side's endpoints of a coordinator↔worker link.
pub struct Link {
    /// Blocking frame-stream reader.
    pub reader: Box<dyn Read + Send>,
    /// Blocking frame-stream writer.
    pub writer: Box<dyn Write + Send>,
    /// The shared mapping, when this link rides the shm transport (the
    /// coordinator's watcher closes it to signal worker death).
    pub shm: Option<Arc<ShmMap>>,
    /// Full-ring spin counter of this side's writer (shm only).
    pub full_spins: Option<Arc<AtomicU64>>,
}

/// A spawned worker process with the coordinator-side link to it.
pub struct SpawnedWorker {
    /// The worker process handle.
    pub child: Child,
    /// Coordinator-side endpoints.
    pub link: Link,
}

static SOCK_NONCE: AtomicU64 = AtomicU64::new(0);

fn sock_path(shard: usize) -> PathBuf {
    let nonce = SOCK_NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "swr-shard-{}-{}-{}.sock",
        std::process::id(),
        shard,
        nonce
    ))
}

fn accept_with_timeout(
    listener: &UnixListener,
    child: &mut Child,
    timeout: Duration,
) -> Result<UnixStream, Error> {
    listener.set_nonblocking(true).map_err(Error::from)?;
    let start = Instant::now();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(Error::from)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(Error::Protocol {
                        reason: format!("shard worker exited before connecting: {status}"),
                    });
                }
                if start.elapsed() > timeout {
                    return Err(Error::Protocol {
                        reason: format!(
                            "shard worker did not connect within {}ms",
                            timeout.as_millis()
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(Error::from(e)),
        }
    }
}

/// Spawns one `swr-shard` worker and establishes the link to it.
pub fn spawn_worker(
    worker_bin: &Path,
    shard: usize,
    transport: ShardTransport,
) -> Result<SpawnedWorker, Error> {
    let mut cmd = Command::new(worker_bin);
    cmd.env(ENV_SHARD_ID, shard.to_string())
        .env(ENV_TRANSPORT, transport.name())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    match transport {
        ShardTransport::Shm => {
            let map = Arc::new(ShmMap::create(DEFAULT_RING_CAP)?);
            cmd.env(ENV_SHM_FD, map.fd().to_string())
                .env(ENV_SHM_CAP, DEFAULT_RING_CAP.to_string());
            let child = cmd.spawn().map_err(Error::from)?;
            let (reader, writer) = shm::endpoints(Arc::clone(&map), ShmSide::Coordinator);
            let full_spins = Arc::clone(&writer.full_spins);
            Ok(SpawnedWorker {
                child,
                link: Link {
                    reader: Box::new(reader),
                    writer: Box::new(writer),
                    shm: Some(map),
                    full_spins: Some(full_spins),
                },
            })
        }
        ShardTransport::Socket => {
            let path = sock_path(shard);
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path).map_err(Error::from)?;
            cmd.env(ENV_SOCK, &path);
            let mut child = cmd.spawn().map_err(Error::from)?;
            let accepted = accept_with_timeout(&listener, &mut child, Duration::from_secs(20));
            // The path served its one rendezvous either way.
            let _ = std::fs::remove_file(&path);
            let stream = match accepted {
                Ok(s) => s,
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            };
            let reader = stream.try_clone().map_err(Error::from)?;
            Ok(SpawnedWorker {
                child,
                link: Link {
                    reader: Box::new(reader),
                    writer: Box::new(stream),
                    shm: None,
                    full_spins: None,
                },
            })
        }
    }
}

/// Worker-side: builds the link back to the coordinator from the spawn
/// environment. Returns `(shard_id, link)`.
pub fn worker_connect_from_env() -> Result<(usize, Link), Error> {
    let bad = |reason: String| Error::InvalidConfig { reason };
    let shard: usize = std::env::var(ENV_SHARD_ID)
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("{ENV_SHARD_ID} missing or invalid")))?;
    let transport = ShardTransport::parse(
        &std::env::var(ENV_TRANSPORT).map_err(|_| bad(format!("{ENV_TRANSPORT} missing")))?,
    )?;
    let link = match transport {
        ShardTransport::Shm => {
            let fd: i32 = std::env::var(ENV_SHM_FD)
                .ok()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad(format!("{ENV_SHM_FD} missing or invalid")))?;
            let cap: usize = std::env::var(ENV_SHM_CAP)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_RING_CAP);
            let map = Arc::new(ShmMap::from_inherited_fd(fd, cap)?);
            let (reader, writer) = shm::endpoints(Arc::clone(&map), ShmSide::Worker);
            let full_spins = Arc::clone(&writer.full_spins);
            Link {
                reader: Box::new(reader),
                writer: Box::new(writer),
                shm: Some(map),
                full_spins: Some(full_spins),
            }
        }
        ShardTransport::Socket => {
            let path = std::env::var(ENV_SOCK).map_err(|_| bad(format!("{ENV_SOCK} missing")))?;
            let stream = UnixStream::connect(&path).map_err(Error::from)?;
            let reader = stream.try_clone().map_err(Error::from)?;
            Link {
                reader: Box::new(reader),
                writer: Box::new(stream),
                shm: None,
                full_spins: None,
            }
        }
    };
    Ok((shard, link))
}

/// Resolves the `swr-shard` worker binary: an explicit override, then
/// `SWR_SHARD_BIN`, then siblings of the current executable (covering both
/// `target/<profile>/` for binaries and `target/<profile>/deps/` for test
/// harnesses).
pub fn resolve_worker_bin(explicit: Option<&Path>) -> Result<PathBuf, Error> {
    if let Some(p) = explicit {
        if p.exists() {
            return Ok(p.to_path_buf());
        }
        return Err(Error::InvalidConfig {
            reason: format!("shard worker binary not found at {}", p.display()),
        });
    }
    if let Ok(p) = std::env::var(ENV_WORKER_BIN) {
        let p = PathBuf::from(p);
        if p.exists() {
            return Ok(p);
        }
        return Err(Error::InvalidConfig {
            reason: format!("{ENV_WORKER_BIN} points at missing file {}", p.display()),
        });
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        for _ in 0..2 {
            if let Some(d) = dir {
                let cand = d.join("swr-shard");
                if cand.exists() {
                    return Ok(cand);
                }
                dir = d.parent();
            }
        }
    }
    Err(Error::InvalidConfig {
        reason: "cannot locate the swr-shard worker binary: build it \
                 (`cargo build --bin swr-shard`) or set SWR_SHARD_BIN"
            .into(),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn transport_parse_round_trips() {
        for t in [ShardTransport::Shm, ShardTransport::Socket] {
            assert_eq!(ShardTransport::parse(t.name()).unwrap(), t);
        }
        assert!(matches!(
            ShardTransport::parse("carrier-pigeon"),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn socket_paths_are_unique() {
        let a = sock_path(0);
        let b = sock_path(0);
        assert_ne!(a, b);
    }
}
