//! The coordinator: spawns shard workers, partitions the intermediate image
//! into owned bands, routes halo scanlines between owners, merges the warped
//! spans into the final image in a deterministic order, and repairs the
//! bands of workers that die mid-frame.
//!
//! ## Determinism of the merge
//!
//! Each final pixel is owned by exactly one band (the warp's per-pixel
//! ownership test), so at most one worker computes a non-zero value for it;
//! the merge writes only non-zero pixels over a cleared image, making the
//! result independent of message arrival order — and bit-identical to the
//! in-process renderers.
//!
//! ## The repair ladder
//!
//! Worker death (EOF on its link, detected by the reader thread or the
//! shared-memory child watcher) degrades the frame, never kills it:
//!
//! 1. If the dead worker had not yet shipped its band's first scanline, the
//!    coordinator composites that one scanline itself and forwards it, so
//!    the band below is not wedged waiting for its halo.
//! 2. The dead band is recomposited locally and warped straight into the
//!    merged image (owned pixels only — overlap-free by construction).
//! 3. If no worker survives frame start, the whole frame falls back to the
//!    serial renderer.

use crate::codec::{write_frame, Frame, MsgKind, COORDINATOR_ID};
use crate::shm::ShmMap;
use crate::transport::{resolve_worker_bin, spawn_worker, ShardTransport};
use crate::wire::{
    decode_final_spans, decode_inter_row, decode_report, encode_assignment, encode_inter_row,
    FrameAssignment,
};
use crate::SceneSpec;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::ops::Range;
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use swr_core::equal_contiguous;
use swr_error::Error;
use swr_geom::{Factorization, ViewSpec};
use swr_render::composite::occupied_y_bounds_src;
use swr_render::{
    composite_scanline_slice_untraced_src, warp_row_band, AxisSrc, CompositeOpts, FinalImage,
    IntermediateImage, NullTracer, SerialRenderer, SharedFinal, VolumeSrc,
};
use swr_volume::EncodedVolume;

/// Configuration of a sharded multi-process render session.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker processes (each owns one band per frame).
    pub shards: usize,
    /// Byte transport between coordinator and workers.
    pub transport: ShardTransport,
    /// Explicit worker binary; `None` resolves via `SWR_SHARD_BIN` or
    /// siblings of the current executable.
    pub worker_bin: Option<PathBuf>,
    /// Per-frame deadline before unresponsive workers are declared dead.
    pub frame_deadline_ms: u64,
    /// Fault injection: SIGKILL this shard after its first tile of the
    /// frame reaches the coordinator (exercises the repair ladder).
    pub kill_shard: Option<usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            transport: ShardTransport::default(),
            worker_bin: None,
            frame_deadline_ms: 30_000,
            kill_shard: None,
        }
    }
}

impl ShardConfig {
    fn try_validate(&self) -> Result<(), Error> {
        if self.shards == 0 || self.shards > 256 {
            return Err(Error::InvalidConfig {
                reason: format!("shard count {} out of range 1..=256", self.shards),
            });
        }
        if self.frame_deadline_ms == 0 {
            return Err(Error::InvalidConfig {
                reason: "frame deadline must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Per-frame statistics of the sharded path (the source of the
/// `shard.tiles_routed` / `shard.bytes_moved` / `shard.ring_full_spins`
/// telemetry counters).
#[derive(Debug, Clone, Default)]
pub struct ShardFrameStats {
    /// Tile messages that crossed the hub (halo rows in, halo rows
    /// forwarded, span batches in).
    pub tiles_routed: u64,
    /// Payload bytes moved across process boundaries, counted per hop.
    pub bytes_moved: u64,
    /// Busy-wait spins on full shared-memory rings (workers + coordinator).
    pub ring_full_spins: u64,
    /// Tiles dropped because they carried a stale epoch.
    pub stale_tiles: u64,
    /// Shards whose bands were recomposited locally after death.
    pub repaired_shards: Vec<usize>,
    /// Whole frame fell back to the serial renderer (no workers alive).
    pub fallback_serial: bool,
}

impl ShardFrameStats {
    /// True when any worker died and the frame needed repair.
    pub fn degraded(&self) -> bool {
        !self.repaired_shards.is_empty() || self.fallback_serial
    }
}

/// Events reader and watcher threads deliver to the frame loop.
enum Event {
    Frame(usize, Frame),
    Dead(usize),
}

struct WorkerSlot {
    writer: Box<dyn Write + Send>,
    child: Arc<Mutex<Child>>,
    shm: Option<Arc<ShmMap>>,
    /// Coordinator-side full-ring spin counter (shm transport only).
    spins: Option<Arc<std::sync::atomic::AtomicU64>>,
    alive: bool,
}

impl WorkerSlot {
    /// Sends a frame; on failure marks the worker dead and reports `false`.
    fn send(&mut self, frame: &Frame) -> bool {
        if !self.alive {
            return false;
        }
        if write_frame(&mut self.writer, frame).is_err() {
            self.alive = false;
            return false;
        }
        true
    }

    fn kill(&self) {
        if let Ok(mut c) = self.child.lock() {
            let _ = c.kill();
        }
        if let Some(map) = &self.shm {
            map.close_both();
        }
    }
}

/// A multi-process sharded renderer: the drop-in counterpart of the
/// in-process renderers whose frames are produced by a fleet of `swr-shard`
/// worker processes.
pub struct ShardedRenderer {
    cfg: ShardConfig,
    enc: EncodedVolume,
    slots: Vec<WorkerSlot>,
    rx: Receiver<Event>,
    stop: Arc<AtomicBool>,
    epoch: u64,
    kill_done: bool,
    serial: SerialRenderer,
    /// Stats of the most recent frame.
    pub last_stats: ShardFrameStats,
}

fn reader_thread(shard: usize, mut reader: Box<dyn std::io::Read + Send>, tx: Sender<Event>) {
    loop {
        match crate::codec::read_frame(&mut reader) {
            Ok(Some(frame)) => {
                if tx.send(Event::Frame(shard, frame)).is_err() {
                    return; // coordinator gone
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Dead(shard));
                return;
            }
        }
    }
}

/// Shared-memory links carry no EOF of their own: this watcher polls the
/// child and closes both rings when it exits, waking the blocked reader.
fn watcher_thread(child: Arc<Mutex<Child>>, map: Arc<ShmMap>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let exited = match child.lock() {
            Ok(mut c) => !matches!(c.try_wait(), Ok(None)),
            Err(_) => true,
        };
        if exited {
            map.close_both();
            return;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// Composites intermediate scanline `y` whole (every slice, ascending
/// front-to-back order) — the exact per-row computation the workers run.
fn composite_row(
    inter: &mut IntermediateImage,
    fact: &Factorization,
    src: AxisSrc<'_>,
    y: usize,
    opts: &CompositeOpts,
) {
    let mut row = inter.row_view(y);
    for m in 0..fact.slice_count() {
        let k = fact.slice_for_step(m);
        composite_scanline_slice_untraced_src(src, fact, &mut row, k, opts);
    }
}

impl ShardedRenderer {
    /// Builds the session: spawns the worker fleet, waits for every hello,
    /// and ships the scene description to each process.
    pub fn try_new(scene: &SceneSpec, cfg: ShardConfig) -> Result<ShardedRenderer, Error> {
        cfg.try_validate()?;
        let enc = scene.try_build()?;
        let bin = resolve_worker_bin(cfg.worker_bin.as_deref())?;
        let (tx, rx) = channel();
        let stop = Arc::new(AtomicBool::new(false));
        let mut slots: Vec<WorkerSlot> = Vec::with_capacity(cfg.shards);

        let spawn_all = (0..cfg.shards).try_for_each(|shard| -> Result<(), Error> {
            let spawned = spawn_worker(&bin, shard, cfg.transport)?;
            let child = Arc::new(Mutex::new(spawned.child));
            let link = spawned.link;
            if let Some(map) = &link.shm {
                let (c, m, s) = (Arc::clone(&child), Arc::clone(map), Arc::clone(&stop));
                std::thread::spawn(move || watcher_thread(c, m, s));
            }
            let rtx = tx.clone();
            std::thread::spawn(move || reader_thread(shard, link.reader, rtx));
            slots.push(WorkerSlot {
                writer: link.writer,
                child,
                shm: link.shm,
                spins: link.full_spins,
                alive: true,
            });
            Ok(())
        });
        if let Err(e) = spawn_all {
            for slot in &slots {
                slot.kill();
                if let Ok(mut c) = slot.child.lock() {
                    let _ = c.wait();
                }
            }
            stop.store(true, Ordering::Relaxed);
            return Err(e);
        }

        let mut renderer = ShardedRenderer {
            cfg,
            enc,
            slots,
            rx,
            stop,
            epoch: 0,
            kill_done: false,
            serial: SerialRenderer::new(),
            last_stats: ShardFrameStats::default(),
        };

        // Rendezvous: every worker announces itself before work is sent.
        let mut hellos = vec![false; renderer.cfg.shards];
        let deadline = Instant::now() + Duration::from_secs(30);
        while hellos.iter().any(|h| !h) {
            let left = deadline.saturating_duration_since(Instant::now());
            match renderer.rx.recv_timeout(left) {
                Ok(Event::Frame(s, f)) if f.kind == MsgKind::Hello => hellos[s] = true,
                Ok(Event::Frame(_, _)) => {}
                Ok(Event::Dead(s)) => {
                    renderer.shutdown();
                    return Err(Error::Protocol {
                        reason: format!("shard worker {s} died during startup"),
                    });
                }
                Err(_) => {
                    renderer.shutdown();
                    return Err(Error::Protocol {
                        reason: "shard workers did not all connect within 30s".into(),
                    });
                }
            }
        }

        let session = Frame {
            kind: MsgKind::SessionStart,
            shard: COORDINATOR_ID,
            epoch: 0,
            rect: [0; 4],
            payload: scene.encode(),
        };
        for slot in &mut renderer.slots {
            slot.send(&session);
        }
        if renderer.slots.iter().all(|s| !s.alive) {
            renderer.shutdown();
            return Err(Error::Protocol {
                reason: "all shard workers died before the session started".into(),
            });
        }
        Ok(renderer)
    }

    /// Number of workers still alive.
    pub fn alive(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    /// Renders one frame through the shard fleet. The result is bit-identical
    /// to the in-process renderers on the same scene and view, including
    /// frames degraded by worker death.
    pub fn try_render(&mut self, view: &ViewSpec) -> Result<FinalImage, Error> {
        view.try_validate()?;
        if self.enc.dims() != view.dims {
            return Err(Error::InvalidView {
                reason: format!(
                    "view dims {:?} do not match the encoded volume dims {:?}",
                    view.dims,
                    self.enc.dims()
                ),
            });
        }
        let fact = Factorization::from_view(view);
        let mut out = FinalImage::new(fact.final_w, fact.final_h);
        let mut stats = ShardFrameStats::default();

        let src = VolumeSrc::Flat(&self.enc);
        let axis_src = src.for_axis(fact.principal);
        let region: Range<usize> = match occupied_y_bounds_src(axis_src, &fact) {
            Some((lo, hi)) => lo..hi + 1,
            None => {
                self.last_stats = stats;
                return Ok(out); // empty volume: nothing to draw
            }
        };

        self.epoch += 1;
        let epoch = self.epoch;
        let bands = equal_contiguous(region.clone(), self.cfg.shards);

        if self.alive() == 0 {
            stats.fallback_serial = true;
            let img = self.serial.try_render(&self.enc, view)?;
            self.last_stats = stats;
            return Ok(img);
        }

        // The shard that waits for halo row `r` (its band ends there).
        let consumer_of: HashMap<usize, usize> = bands
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty() && b.end != region.end)
            .map(|(i, b)| (b.end, i))
            .collect();

        // Work orders. A dead-at-start shard goes straight to repair.
        let mut pending: HashSet<usize> = HashSet::new();
        let mut repair: Vec<usize> = Vec::new();
        for (i, band) in bands.iter().enumerate() {
            if band.is_empty() {
                continue;
            }
            let assignment = FrameAssignment {
                view: view.clone(),
                region: (region.start as u32, region.end as u32),
                band: (band.start as u32, band.end as u32),
                send_first_row: band.start != region.start,
                expect_halo: band.end != region.end,
            };
            let frame = Frame {
                kind: MsgKind::FrameStart,
                shard: COORDINATOR_ID,
                epoch,
                rect: [0, band.start as u32, 0, (band.end - band.start) as u32],
                payload: encode_assignment(&assignment),
            };
            if self.slots[i].send(&frame) {
                pending.insert(i);
            } else {
                repair.push(i);
            }
        }

        // Halo scanlines received this frame, kept for forwarding and as
        // repair input (row index → raw InterRow payload).
        let mut halo_cache: HashMap<usize, Vec<u8>> = HashMap::new();
        // Lazily created scratch image for substitute halos and band repair;
        // `local_rows` tracks which rows of it hold composited/decoded data.
        let mut repair_inter: Option<IntermediateImage> = None;
        let mut local_rows: HashSet<usize> = HashSet::new();
        let opts = CompositeOpts::default();
        let spin_base: u64 = self
            .slots
            .iter()
            .filter_map(|s| s.spins.as_ref())
            .map(|c| c.load(Ordering::Relaxed))
            .sum();

        let deadline = Instant::now() + Duration::from_millis(self.cfg.frame_deadline_ms);
        while !pending.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Unresponsive workers: kill, repair their bands locally.
                for s in pending.drain() {
                    self.slots[s].kill();
                    self.slots[s].alive = false;
                    repair.push(s);
                }
                break;
            }
            let event = match self.rx.recv_timeout(left) {
                Ok(ev) => ev,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    for s in pending.drain() {
                        repair.push(s);
                    }
                    break;
                }
            };
            match event {
                Event::Frame(s, f) => {
                    let kill_now =
                        self.cfg.kill_shard == Some(s) && !self.kill_done && f.epoch == epoch;
                    match f.kind {
                        MsgKind::InterRow => {
                            if f.epoch != epoch {
                                stats.stale_tiles += 1;
                                continue;
                            }
                            stats.tiles_routed += 1;
                            stats.bytes_moved += f.payload.len() as u64;
                            let row = f.rect[1] as usize;
                            if let Some(&t) = consumer_of.get(&row) {
                                if self.slots[t].alive && pending.contains(&t) {
                                    let fwd = Frame {
                                        kind: MsgKind::InterRow,
                                        shard: COORDINATOR_ID,
                                        epoch,
                                        rect: f.rect,
                                        payload: f.payload.clone(),
                                    };
                                    if self.slots[t].send(&fwd) {
                                        stats.tiles_routed += 1;
                                        stats.bytes_moved += fwd.payload.len() as u64;
                                    } else {
                                        handle_death(
                                            &mut self.slots,
                                            t,
                                            epoch,
                                            &fact,
                                            axis_src,
                                            &region,
                                            &bands,
                                            &consumer_of,
                                            &mut pending,
                                            &mut repair,
                                            &mut halo_cache,
                                            &mut repair_inter,
                                            &mut local_rows,
                                            &opts,
                                            &mut stats,
                                        );
                                    }
                                }
                            }
                            halo_cache.insert(row, f.payload);
                        }
                        MsgKind::FinalSpans => {
                            if f.epoch != epoch {
                                stats.stale_tiles += 1;
                                continue;
                            }
                            stats.tiles_routed += 1;
                            stats.bytes_moved += f.payload.len() as u64;
                            merge_spans(&mut out, &f.payload)?;
                        }
                        MsgKind::FrameDone => {
                            if f.epoch != epoch {
                                stats.stale_tiles += 1;
                                continue;
                            }
                            if let Ok(rep) = decode_report(&f.payload) {
                                stats.ring_full_spins += rep.ring_full_spins;
                            }
                            pending.remove(&s);
                        }
                        MsgKind::Hello => {}
                        _ => {
                            // Protocol violation: retire the worker.
                            self.slots[s].kill();
                            handle_death(
                                &mut self.slots,
                                s,
                                epoch,
                                &fact,
                                axis_src,
                                &region,
                                &bands,
                                &consumer_of,
                                &mut pending,
                                &mut repair,
                                &mut halo_cache,
                                &mut repair_inter,
                                &mut local_rows,
                                &opts,
                                &mut stats,
                            );
                        }
                    }
                    if kill_now {
                        // Fault injection: the shard dies right after its
                        // first tile of this frame reaches the hub. Declare
                        // it dead immediately — the SIGKILL races with tiles
                        // already buffered in the transport, and the repair
                        // ladder must run either way.
                        self.kill_done = true;
                        self.slots[s].kill();
                        handle_death(
                            &mut self.slots,
                            s,
                            epoch,
                            &fact,
                            axis_src,
                            &region,
                            &bands,
                            &consumer_of,
                            &mut pending,
                            &mut repair,
                            &mut halo_cache,
                            &mut repair_inter,
                            &mut local_rows,
                            &opts,
                            &mut stats,
                        );
                    }
                }
                Event::Dead(s) => {
                    handle_death(
                        &mut self.slots,
                        s,
                        epoch,
                        &fact,
                        axis_src,
                        &region,
                        &bands,
                        &consumer_of,
                        &mut pending,
                        &mut repair,
                        &mut halo_cache,
                        &mut repair_inter,
                        &mut local_rows,
                        &opts,
                        &mut stats,
                    );
                }
            }
        }

        // Coordinator-side ring-writer spins this frame.
        let spin_now: u64 = self
            .slots
            .iter()
            .filter_map(|s| s.spins.as_ref())
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        stats.ring_full_spins += spin_now.saturating_sub(spin_base);

        // Repair: recomposite each lost band locally and warp it straight
        // into the merged image (owned pixels only, so overwrite-safe).
        repair.sort_unstable();
        repair.dedup();
        for &s in &repair {
            let band = &bands[s];
            if band.is_empty() {
                continue;
            }
            let inter = repair_inter
                .get_or_insert_with(|| IntermediateImage::new(fact.inter_w, fact.inter_h));
            for y in band.clone() {
                if local_rows.insert(y) {
                    composite_row(inter, &fact, axis_src, y, &opts);
                }
            }
            if band.end != region.end && !local_rows.contains(&band.end) {
                let mut decoded = false;
                if let Some(payload) = halo_cache.get(&band.end) {
                    decoded = decode_inter_row(payload, inter.row_view(band.end).pix).is_ok();
                }
                if !decoded {
                    composite_row(inter, &fact, axis_src, band.end, &opts);
                }
                local_rows.insert(band.end);
            }
            let warp_lo = if band.start == region.start {
                band.start.saturating_sub(1)
            } else {
                band.start
            };
            {
                let shared = SharedFinal::new(&mut out);
                warp_row_band(
                    &*inter,
                    &fact,
                    &shared,
                    (warp_lo, band.end),
                    &mut NullTracer,
                );
            }
            stats.repaired_shards.push(s);
        }

        self.last_stats = stats;
        Ok(out)
    }

    /// Orderly teardown: shutdown frames, bounded reaping, hard kill last.
    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let bye = Frame::control(MsgKind::Shutdown, COORDINATOR_ID, self.epoch);
        for slot in &mut self.slots {
            slot.send(&bye);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for slot in &self.slots {
            loop {
                let exited = match slot.child.lock() {
                    Ok(mut c) => !matches!(c.try_wait(), Ok(None)),
                    Err(_) => true,
                };
                if exited {
                    break;
                }
                if Instant::now() >= deadline {
                    slot.kill();
                    if let Ok(mut c) = slot.child.lock() {
                        let _ = c.wait();
                    }
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            if let Some(map) = &slot.shm {
                map.close_both();
            }
        }
    }
}

impl Drop for ShardedRenderer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Marks a worker dead, schedules its band for repair, and — if the band
/// below is still waiting for a halo this worker never sent — composites
/// the substitute halo scanline and forwards it.
#[allow(clippy::too_many_arguments)]
fn handle_death(
    slots: &mut [WorkerSlot],
    s: usize,
    epoch: u64,
    fact: &Factorization,
    axis_src: AxisSrc<'_>,
    region: &Range<usize>,
    bands: &[Range<usize>],
    consumer_of: &HashMap<usize, usize>,
    pending: &mut HashSet<usize>,
    repair: &mut Vec<usize>,
    halo_cache: &mut HashMap<usize, Vec<u8>>,
    repair_inter: &mut Option<IntermediateImage>,
    local_rows: &mut HashSet<usize>,
    opts: &CompositeOpts,
    stats: &mut ShardFrameStats,
) {
    if !slots[s].alive && !pending.contains(&s) {
        return;
    }
    slots[s].alive = false;
    if let Some(map) = &slots[s].shm {
        map.close_both();
    }
    if pending.remove(&s) {
        repair.push(s);
    }
    let band = &bands[s];
    if band.is_empty() || band.start == region.start || halo_cache.contains_key(&band.start) {
        return;
    }
    let Some(&t) = consumer_of.get(&band.start) else {
        return;
    };
    if !slots[t].alive || !pending.contains(&t) {
        return;
    }
    // Substitute halo: composited whole, so it is bit-identical to the
    // scanline the dead worker would have sent.
    let inter =
        repair_inter.get_or_insert_with(|| IntermediateImage::new(fact.inter_w, fact.inter_h));
    if local_rows.insert(band.start) {
        composite_row(inter, fact, axis_src, band.start, opts);
    }
    let payload = encode_inter_row(inter.row_view(band.start).pix);
    halo_cache.insert(band.start, payload.clone());
    let fwd = Frame {
        kind: MsgKind::InterRow,
        shard: COORDINATOR_ID,
        epoch,
        rect: [0, band.start as u32, fact.inter_w as u32, 1],
        payload,
    };
    if slots[t].send(&fwd) {
        stats.tiles_routed += 1;
        stats.bytes_moved += fwd.payload.len() as u64;
    }
}

/// Merges one span batch into the final image: non-zero pixels win (each is
/// owned by exactly one band, so order cannot matter), zeros are the shared
/// background and need no write.
fn merge_spans(out: &mut FinalImage, payload: &[u8]) -> Result<(), Error> {
    let spans = decode_final_spans(payload)?;
    let (w, h) = (out.width(), out.height());
    for span in spans {
        let v = span.v as usize;
        let u0 = span.u0 as usize;
        if v >= h || u0 + span.pixels.len() > w {
            return Err(Error::Protocol {
                reason: format!(
                    "span at ({u0}, {v}) length {} exceeds final image {w}x{h}",
                    span.pixels.len()
                ),
            });
        }
        for (i, px) in span.pixels.iter().enumerate() {
            if *px != [0, 0, 0, 0] {
                out.set(u0 + i, v, *px);
            }
        }
    }
    Ok(())
}
