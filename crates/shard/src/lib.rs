//! # swr-shard — multi-process sharded compositing
//!
//! A distributed framebuffer for the shear-warp pipeline: the intermediate
//! image is sharded into contiguous scanline bands owned by separate worker
//! *processes*, tiles are routed asynchronously to their owners over a
//! framed, checksummed protocol, and the coordinator composites arriving
//! tiles in a deterministic merge order — producing a final warped image
//! that is **bit-identical** to the in-process `NewParallelRenderer` on the
//! same inputs.
//!
//! The paper this repository reproduces stops at one shared address space;
//! this crate is the step past it (ROADMAP item 2), following the
//! owner-routes-tiles design of the Distributed FrameBuffer (Usher et al.)
//! with the paper's own contiguous band partition per shard.
//!
//! ## Topology
//!
//! ```text
//!             spawn + SessionStart + FrameStart(band_i)
//!   coordinator ──────────────────────────────────────▶ swr-shard workers
//!        ▲   ╲                                              0 … N-1
//!        │    ╲ InterRow (halo scanline, routed to the      │
//!        │     ╲ owner of the band below)                   │
//!        │      ◀───────────────────────────────────────────┤
//!        │      ─────────────────────────▶ (forwarded)      │
//!        └──────────────────────────────────────────────────┘
//!          FinalSpans (warped band pixels) + FrameDone
//! ```
//!
//! The coordinator is a hub: workers never talk to each other directly, so
//! death of any worker is observed in exactly one place and repaired there
//! (recomposite the lost band serially, re-warp it locally — one dead
//! process degrades, not kills, the run).
//!
//! ## Why scanline bands shard cleanly
//!
//! Compositing of intermediate scanline `y` depends only on the volume and
//! on `y` itself (slices are composited in ascending front-to-back order
//! within each scanline), so any partition of rows across processes is
//! bit-identical to the serial order. The partition-preserving warp of band
//! `[lo, hi)` reads rows `lo-1..=hi` at most — one halo scanline per
//! boundary — which is the only inter-shard communication, exactly the
//! communication structure the paper derives for threads.

pub mod codec;
pub mod coordinator;
pub mod shm;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{ShardConfig, ShardFrameStats, ShardedRenderer};
pub use swr_error::Error;
pub use transport::{resolve_worker_bin, ShardTransport};

use swr_volume::{classify, EncodedVolume, Phantom, TransferFunction};

/// A fully deterministic scene description small enough to ship to workers:
/// each process regenerates, classifies, and encodes the identical volume
/// from `(phantom, base, seed, transfer)` instead of shipping gigabytes of
/// voxels over the tile protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SceneSpec {
    /// Phantom name: `mri` | `ct` | `ellipsoid`.
    pub phantom: String,
    /// Base resolution fed to [`Phantom::paper_dims`].
    pub base: usize,
    /// Phantom generation seed.
    pub seed: u64,
    /// Transfer-function preset: `mri` | `ct` | `opaque`.
    pub transfer: String,
}

impl SceneSpec {
    /// A scene using the phantom's default transfer function.
    pub fn new(phantom: &str, base: usize, seed: u64) -> Result<SceneSpec, Error> {
        // Mirror `Phantom::default_transfer` by name (the wire format ships
        // names, not tables).
        let transfer = match phantom_by_name(phantom)? {
            Phantom::MriBrain | Phantom::SolidEllipsoid => "mri",
            Phantom::CtHead => "ct",
        };
        Ok(SceneSpec {
            phantom: phantom.to_string(),
            base,
            seed,
            transfer: transfer.to_string(),
        })
    }

    /// Generates, classifies, and run-length encodes the scene's volume —
    /// deterministic, so every process derives bit-identical encodings.
    pub fn try_build(&self) -> Result<EncodedVolume, Error> {
        let phantom = phantom_by_name(&self.phantom)?;
        let tf = transfer_by_name(&self.transfer)?;
        if self.base == 0 {
            return Err(Error::InvalidConfig {
                reason: "scene base resolution must be positive".into(),
            });
        }
        let dims = phantom.paper_dims(self.base);
        let vol = phantom.generate(dims, self.seed);
        Ok(EncodedVolume::encode(&classify(&vol, &tf)))
    }

    /// Encodes the scene for a `SessionStart` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = wire::PayloadWriter::new();
        w.str16(&self.phantom);
        w.str16(&self.transfer);
        w.u64(self.base as u64);
        w.u64(self.seed);
        w.finish()
    }

    /// Decodes a `SessionStart` payload.
    pub fn decode(buf: &[u8]) -> Result<SceneSpec, Error> {
        let mut r = wire::PayloadReader::new(buf);
        let phantom = r.str16("scene phantom")?;
        let transfer = r.str16("scene transfer")?;
        let base = r.u64("scene base")? as usize;
        let seed = r.u64("scene seed")?;
        r.expect_done("scene spec")?;
        Ok(SceneSpec {
            phantom,
            base,
            seed,
            transfer,
        })
    }
}

fn phantom_by_name(name: &str) -> Result<Phantom, Error> {
    match name {
        "mri" => Ok(Phantom::MriBrain),
        "ct" => Ok(Phantom::CtHead),
        "ellipsoid" => Ok(Phantom::SolidEllipsoid),
        other => Err(Error::InvalidConfig {
            reason: format!("unknown phantom {other:?} (expected mri|ct|ellipsoid)"),
        }),
    }
}

fn transfer_by_name(name: &str) -> Result<TransferFunction, Error> {
    match name {
        "mri" => Ok(TransferFunction::mri_default()),
        "ct" => Ok(TransferFunction::ct_default()),
        "opaque" => Ok(TransferFunction::opaque_nonzero()),
        other => Err(Error::InvalidConfig {
            reason: format!("unknown transfer {other:?} (expected mri|ct|opaque)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn scene_round_trip() {
        let s = SceneSpec::new("mri", 24, 42).unwrap();
        assert_eq!(s.transfer, "mri");
        assert_eq!(SceneSpec::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn scene_builds_deterministically() {
        let s = SceneSpec::new("ellipsoid", 12, 7).unwrap();
        let a = s.try_build().unwrap();
        let b = s.try_build().unwrap();
        assert_eq!(a.dims(), b.dims());
    }

    #[test]
    fn unknown_phantom_is_typed_error() {
        assert!(matches!(
            SceneSpec::new("teapot", 24, 1),
            Err(Error::InvalidConfig { .. })
        ));
        let bogus = SceneSpec {
            phantom: "teapot".into(),
            base: 24,
            seed: 1,
            transfer: "mri".into(),
        };
        assert!(bogus.try_build().is_err());
    }
}
