//! The shared-memory transport: a pair of single-producer single-consumer
//! byte rings in an anonymous `memfd`, one per direction, with atomic
//! monotonic head/tail cursors living inside the mapping.
//!
//! The coordinator creates the memfd (without `MFD_CLOEXEC`, so the file
//! descriptor survives `exec`), maps it, and passes the raw fd number to the
//! worker through `SWR_SHARD_SHM_FD`; the worker maps the same fd and the two
//! processes share the rings directly — tile payloads cross the process
//! boundary with one memcpy in and one out, no syscalls on the fast path.
//!
//! Ring protocol: `head` and `tail` are monotonically increasing byte
//! counters (they never wrap modulo the capacity; the data offset is
//! `counter % cap`). The producer may write while `head - tail < cap`; the
//! consumer may read while `head > tail`. A `closed` flag (set by either
//! side's shutdown, or by the coordinator's child watcher when a worker
//! dies) turns further reads into EOF and writes into `BrokenPipe`, so a
//! SIGKILLed peer unblocks the survivor instead of wedging it.
//!
//! On non-Linux hosts `memfd_create` is unavailable; constructing the
//! transport returns a typed error and callers fall back to the socket path.

#![allow(dead_code)]

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swr_error::Error;

/// Default per-direction ring capacity in bytes.
pub const DEFAULT_RING_CAP: usize = 1 << 20;

/// Ring header size (head, tail, closed — each on its own 64-byte line).
const RING_HDR: usize = 192;

/// Environment variable carrying the inherited memfd number to the worker.
pub const ENV_SHM_FD: &str = "SWR_SHARD_SHM_FD";
/// Environment variable carrying the per-direction ring capacity.
pub const ENV_SHM_CAP: &str = "SWR_SHARD_SHM_CAP";

/// How long a blocked ring read/write waits before giving up (a peer that is
/// alive but silent for this long is treated as wedged).
const RING_STALL_TIMEOUT: Duration = Duration::from_secs(120);

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_char, c_int, c_long, c_uint, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
        pub fn ftruncate(fd: c_int, length: c_long) -> c_int;
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// A shared mapping holding the two rings of one coordinator↔worker link.
///
/// Layout: ring 0 (coordinator → worker) at offset 0, ring 1 (worker →
/// coordinator) at offset `ring_bytes(cap)`; each ring is a [`RING_HDR`]
/// header followed by `cap` data bytes.
pub struct ShmMap {
    base: *mut u8,
    len: usize,
    cap: usize,
    /// Owning side keeps the memfd open for the lifetime of the mapping so
    /// the fd number stays valid for late-spawning workers; -1 when the
    /// mapping came from an inherited fd we do not own.
    fd: i32,
    owns_fd: bool,
}

// SAFETY: all cross-thread access to the mapping goes through the atomics in
// the ring headers plus acquire/release-ordered data copies; the raw pointer
// itself is only offset arithmetic.
unsafe impl Send for ShmMap {}
unsafe impl Sync for ShmMap {}

fn ring_bytes(cap: usize) -> usize {
    RING_HDR + cap
}

fn map_len(cap: usize) -> usize {
    2 * ring_bytes(cap)
}

fn unsupported() -> Error {
    Error::InvalidConfig {
        reason: "shared-memory transport requires Linux memfd support; \
                 use --transport socket"
            .into(),
    }
}

impl ShmMap {
    /// Creates the memfd and maps it (coordinator side). The fd is created
    /// *without* `MFD_CLOEXEC` so spawned workers inherit it.
    #[cfg(target_os = "linux")]
    pub fn create(cap: usize) -> Result<ShmMap, Error> {
        let len = map_len(cap);
        // SAFETY: name is a valid NUL-terminated C string; flags 0 keeps the
        // fd inheritable across exec (deliberate — the worker needs it).
        let fd = unsafe { sys::memfd_create(c"swr-shard-ring".as_ptr(), 0) };
        if fd < 0 {
            return Err(Error::from(io::Error::last_os_error()));
        }
        // SAFETY: fd is a fresh memfd we own.
        if unsafe { sys::ftruncate(fd, len as i64) } != 0 {
            let e = io::Error::last_os_error();
            // SAFETY: fd is open and owned by us.
            unsafe { sys::close(fd) };
            return Err(Error::from(e));
        }
        Self::map_fd(fd, cap, true)
    }

    #[cfg(not(target_os = "linux"))]
    pub fn create(_cap: usize) -> Result<ShmMap, Error> {
        Err(unsupported())
    }

    /// Maps an inherited memfd (worker side).
    #[cfg(target_os = "linux")]
    pub fn from_inherited_fd(fd: i32, cap: usize) -> Result<ShmMap, Error> {
        Self::map_fd(fd, cap, false)
    }

    #[cfg(not(target_os = "linux"))]
    pub fn from_inherited_fd(_fd: i32, _cap: usize) -> Result<ShmMap, Error> {
        Err(unsupported())
    }

    #[cfg(target_os = "linux")]
    fn map_fd(fd: i32, cap: usize, owns_fd: bool) -> Result<ShmMap, Error> {
        let len = map_len(cap);
        // SAFETY: fd is a memfd of at least `len` bytes; we request a fresh
        // shared read/write mapping and check for MAP_FAILED.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                fd,
                0,
            )
        };
        if base == sys::MAP_FAILED {
            let e = io::Error::last_os_error();
            if owns_fd {
                // SAFETY: fd is open and owned by us.
                unsafe { sys::close(fd) };
            }
            return Err(Error::from(e));
        }
        Ok(ShmMap {
            base: base as *mut u8,
            len,
            cap,
            fd,
            owns_fd,
        })
    }

    /// The raw memfd number (what `SWR_SHARD_SHM_FD` carries to the worker).
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Per-direction ring capacity in bytes.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn ring_base(&self, idx: usize) -> *mut u8 {
        debug_assert!(idx < 2);
        // In-bounds by construction: the mapping holds exactly two rings.
        self.base.wrapping_add(idx * ring_bytes(self.cap))
    }

    fn head(&self, idx: usize) -> &AtomicU64 {
        // SAFETY: offset 0 of the ring header is within the mapping and
        // 8-aligned (page-aligned base); the mapping outlives `self`.
        unsafe { &*(self.ring_base(idx) as *const AtomicU64) }
    }

    fn tail(&self, idx: usize) -> &AtomicU64 {
        // SAFETY: offset 64 is within the header and 8-aligned.
        unsafe { &*(self.ring_base(idx).add(64) as *const AtomicU64) }
    }

    fn closed(&self, idx: usize) -> &AtomicU32 {
        // SAFETY: offset 128 is within the header and 4-aligned.
        unsafe { &*(self.ring_base(idx).add(128) as *const AtomicU32) }
    }

    fn data(&self, idx: usize) -> *mut u8 {
        self.ring_base(idx).wrapping_add(RING_HDR)
    }

    /// Marks both directions closed, waking any blocked reader or writer on
    /// either side. Idempotent; called on orderly shutdown and by the child
    /// watcher when the peer process dies.
    pub fn close_both(&self) {
        self.closed(0).store(1, Ordering::Release);
        self.closed(1).store(1, Ordering::Release);
    }
}

impl Drop for ShmMap {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: base/len describe the mapping created in map_fd.
            unsafe { sys::munmap(self.base as *mut _, self.len) };
            if self.owns_fd {
                // SAFETY: fd is open and owned by us.
                unsafe { sys::close(self.fd) };
            }
        }
    }
}

/// Which side of the link this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmSide {
    Coordinator,
    Worker,
}

impl ShmSide {
    /// Ring index this side writes to.
    fn tx(self) -> usize {
        match self {
            ShmSide::Coordinator => 0,
            ShmSide::Worker => 1,
        }
    }
    /// Ring index this side reads from.
    fn rx(self) -> usize {
        match self {
            ShmSide::Coordinator => 1,
            ShmSide::Worker => 0,
        }
    }
}

/// Writing endpoint of one direction of a [`ShmMap`].
pub struct ShmWriter {
    map: Arc<ShmMap>,
    ring: usize,
    /// Busy-wait iterations observed while the ring was full (the
    /// `shard.ring_full_spins` telemetry counter).
    pub full_spins: Arc<AtomicU64>,
}

/// Reading endpoint of one direction of a [`ShmMap`].
pub struct ShmReader {
    map: Arc<ShmMap>,
    ring: usize,
}

/// Splits a mapped link into this side's (reader, writer) endpoints.
pub fn endpoints(map: Arc<ShmMap>, side: ShmSide) -> (ShmReader, ShmWriter) {
    (
        ShmReader {
            map: Arc::clone(&map),
            ring: side.rx(),
        },
        ShmWriter {
            map,
            ring: side.tx(),
            full_spins: Arc::new(AtomicU64::new(0)),
        },
    )
}

/// One step of the backoff ladder for a blocked ring operation.
fn backoff(iters: &mut u64) {
    *iters += 1;
    if *iters < 64 {
        std::hint::spin_loop();
    } else if *iters < 4096 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(200));
    }
}

impl Write for ShmWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = self.map.cap() as u64;
        let head = self.map.head(self.ring);
        let tail = self.map.tail(self.ring);
        let closed = self.map.closed(self.ring);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            if closed.load(Ordering::Acquire) != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "shard ring closed by peer",
                ));
            }
            let h = head.load(Ordering::Relaxed);
            let t = tail.load(Ordering::Acquire);
            let free = cap - (h - t);
            if free > 0 {
                let n = (buf.len() as u64).min(free) as usize;
                let off = (h % cap) as usize;
                let first = n.min(self.map.cap() - off);
                let data = self.map.data(self.ring);
                // SAFETY: [off, off+first) and [0, n-first) are inside the
                // ring's data area; the SPSC protocol guarantees the
                // consumer does not read past `head`, so these bytes are
                // exclusively ours until the head store below publishes them.
                unsafe {
                    std::ptr::copy_nonoverlapping(buf.as_ptr(), data.add(off), first);
                    if n > first {
                        std::ptr::copy_nonoverlapping(buf.as_ptr().add(first), data, n - first);
                    }
                }
                head.store(h + n as u64, Ordering::Release);
                return Ok(n);
            }
            self.full_spins.fetch_add(1, Ordering::Relaxed);
            if start.elapsed() > RING_STALL_TIMEOUT {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "shard ring full: peer stopped draining",
                ));
            }
            backoff(&mut iters);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for ShmReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = self.map.cap() as u64;
        let head = self.map.head(self.ring);
        let tail = self.map.tail(self.ring);
        let closed = self.map.closed(self.ring);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            let h = head.load(Ordering::Acquire);
            let t = tail.load(Ordering::Relaxed);
            let avail = h - t;
            if avail > 0 {
                let n = (buf.len() as u64).min(avail) as usize;
                let off = (t % cap) as usize;
                let first = n.min(self.map.cap() - off);
                let data = self.map.data(self.ring);
                // SAFETY: the ranges are inside the ring's data area; the
                // acquire load of `head` synchronizes with the producer's
                // release store, making these bytes visible and stable.
                unsafe {
                    std::ptr::copy_nonoverlapping(data.add(off), buf.as_mut_ptr(), first);
                    if n > first {
                        std::ptr::copy_nonoverlapping(data, buf.as_mut_ptr().add(first), n - first);
                    }
                }
                tail.store(t + n as u64, Ordering::Release);
                return Ok(n);
            }
            // Drain-then-close: only report EOF once the ring is empty.
            if closed.load(Ordering::Acquire) != 0 {
                return Ok(0);
            }
            if start.elapsed() > RING_STALL_TIMEOUT {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "shard ring empty: peer went silent without closing",
                ));
            }
            backoff(&mut iters);
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn ring_round_trips_across_wrap() {
        let map = Arc::new(ShmMap::create(4096).unwrap());
        let (mut rx, mut tx) = endpoints(Arc::clone(&map), ShmSide::Coordinator);
        let (mut wrx, mut wtx) = endpoints(Arc::clone(&map), ShmSide::Worker);
        // Coordinator → worker, repeatedly, to force wraparound.
        let msg: Vec<u8> = (0..1500u32).map(|i| (i * 7) as u8).collect();
        for round in 0..10 {
            tx.write_all(&msg).unwrap();
            let mut got = vec![0u8; msg.len()];
            wrx.read_exact(&mut got).unwrap();
            assert_eq!(got, msg, "round {round}");
        }
        // Worker → coordinator on the other ring.
        wtx.write_all(b"pong").unwrap();
        let mut got = [0u8; 4];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");
    }

    #[test]
    fn ring_threads_stream_concurrently() {
        let map = Arc::new(ShmMap::create(1024).unwrap());
        let (_rx, mut tx) = endpoints(Arc::clone(&map), ShmSide::Coordinator);
        let (mut wrx, _wtx) = endpoints(Arc::clone(&map), ShmSide::Worker);
        let total = 1 << 18; // far beyond capacity: requires overlap
        let producer = std::thread::spawn(move || {
            let chunk: Vec<u8> = (0..257u32).map(|i| i as u8).collect();
            let mut sent = 0;
            while sent < total {
                let n = chunk.len().min(total - sent);
                tx.write_all(&chunk[..n]).unwrap();
                sent += n;
            }
        });
        let mut got = 0usize;
        let mut buf = [0u8; 509];
        while got < total {
            let n = wrx.read(&mut buf).unwrap();
            assert!(n > 0);
            for (i, &b) in buf[..n].iter().enumerate() {
                assert_eq!(b, ((got + i) % 257) as u8);
            }
            got += n;
        }
        producer.join().unwrap();
    }

    #[test]
    fn close_unblocks_reader_with_eof_and_writer_with_broken_pipe() {
        let map = Arc::new(ShmMap::create(256).unwrap());
        let (mut wrx, _wtx) = endpoints(Arc::clone(&map), ShmSide::Worker);
        let m2 = Arc::clone(&map);
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            m2.close_both();
        });
        let mut buf = [0u8; 16];
        assert_eq!(wrx.read(&mut buf).unwrap(), 0, "EOF after close");
        closer.join().unwrap();
        let (_rx, mut tx) = endpoints(Arc::clone(&map), ShmSide::Coordinator);
        let err = tx.write(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn full_ring_counts_spins() {
        let map = Arc::new(ShmMap::create(64).unwrap());
        let (_rx, mut tx) = endpoints(Arc::clone(&map), ShmSide::Coordinator);
        let spins = Arc::clone(&tx.full_spins);
        tx.write_all(&[0u8; 64]).unwrap(); // fill exactly
        let (mut wrx, _wtx) = endpoints(Arc::clone(&map), ShmSide::Worker);
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let mut buf = [0u8; 64];
            wrx.read_exact(&mut buf).unwrap();
        });
        tx.write_all(&[1u8; 32]).unwrap(); // must block until drained
        drainer.join().unwrap();
        assert!(spins.load(Ordering::Relaxed) > 0, "blocked write must spin");
    }
}
