//! The shard worker: the event loop behind the `swr-shard` binary.
//!
//! A worker owns one contiguous band of intermediate-image scanlines per
//! frame. It composites each owned scanline whole (all slices in ascending
//! front-to-back order — bit-identical to the serial order by construction),
//! ships its first scanline to the coordinator as soon as it is finished
//! (the halo the band below needs, routed asynchronously while the rest of
//! the band is still compositing), waits for its own halo scanline from the
//! band above, warps exactly the final pixels its band owns, and streams
//! the warped spans back to the coordinator.

use crate::codec::{read_frame, write_frame, Frame, MsgKind, MAX_PAYLOAD};
use crate::transport::{worker_connect_from_env, Link};
use crate::wire::{
    decode_assignment, decode_inter_row, encode_final_spans, encode_inter_row, encode_report,
    FinalSpan, FrameAssignment, PayloadWriter, WorkerFrameReport,
};
use std::sync::atomic::Ordering;
use swr_error::Error;
use swr_geom::Factorization;
use swr_render::{
    composite_scanline_slice_untraced_src, warp_row_band, CompositeOpts, FinalImage,
    IntermediateImage, NullTracer, SharedFinal, VolumeSrc,
};
use swr_volume::EncodedVolume;

/// Flush a `FinalSpans` message once the batch reaches this payload size, so
/// large frames stream through a small ring instead of requiring one giant
/// frame (which would also bounce off [`MAX_PAYLOAD`]).
const SPAN_FLUSH_BYTES: usize = 1 << 20;

fn proto(reason: impl Into<String>) -> Error {
    Error::Protocol {
        reason: reason.into(),
    }
}

/// What interrupted (or concluded) the handling of one `FrameStart`.
enum AfterFrame {
    /// Band rendered and reported.
    Completed,
    /// A newer `FrameStart` preempted this frame while waiting for the halo
    /// (the coordinator abandoned the epoch); carry it into the main loop.
    Preempted(Frame),
    /// Orderly shutdown arrived mid-frame.
    Shutdown,
}

/// Runs the worker event loop to completion. This is the entire body of the
/// `swr-shard` binary; exit code comes from the returned error, if any.
pub fn run_worker() -> Result<(), Error> {
    let (shard, mut link) = worker_connect_from_env()?;
    let shard = u16::try_from(shard).map_err(|_| proto("shard id exceeds u16"))?;
    let mut hello = PayloadWriter::new();
    hello.u32(shard as u32);
    hello.u32(std::process::id());
    write_frame(
        &mut link.writer,
        &Frame {
            kind: MsgKind::Hello,
            shard,
            epoch: 0,
            rect: [0; 4],
            payload: hello.finish(),
        },
    )?;

    let mut enc: Option<EncodedVolume> = None;
    let mut pending: Option<Frame> = None;
    loop {
        let frame = match pending.take() {
            Some(f) => f,
            None => match read_frame(&mut link.reader)? {
                Some(f) => f,
                None => return Ok(()), // coordinator closed the link
            },
        };
        match frame.kind {
            MsgKind::SessionStart => {
                let scene = crate::SceneSpec::decode(&frame.payload)?;
                enc = Some(scene.try_build()?);
            }
            MsgKind::FrameStart => {
                let Some(enc) = enc.as_ref() else {
                    return Err(proto("FrameStart before SessionStart"));
                };
                match render_band(shard, &mut link, enc, &frame)? {
                    AfterFrame::Completed => {}
                    AfterFrame::Preempted(f) => pending = Some(f),
                    AfterFrame::Shutdown => return Ok(()),
                }
            }
            MsgKind::Shutdown => return Ok(()),
            // A late-forwarded halo from an epoch this worker already left
            // behind; drop it (the epoch tag exists exactly for this).
            MsgKind::InterRow => {}
            other => {
                return Err(proto(format!(
                    "unexpected {other:?} frame at worker top level"
                )))
            }
        }
    }
}

/// Handles one `FrameStart`: composite the band, exchange halos, warp, and
/// stream the result back.
fn render_band(
    shard: u16,
    link: &mut Link,
    enc: &EncodedVolume,
    start: &Frame,
) -> Result<AfterFrame, Error> {
    let epoch = start.epoch;
    let a: FrameAssignment = decode_assignment(&start.payload)?;
    a.view.try_validate()?;
    let fact = Factorization::from_view(&a.view);
    let region = a.region.0 as usize..a.region.1 as usize;
    let band = a.band.0 as usize..a.band.1 as usize;
    if region.end > fact.inter_h {
        return Err(proto(format!(
            "assignment region {region:?} exceeds intermediate height {}",
            fact.inter_h
        )));
    }
    let spin_base = link
        .full_spins
        .as_ref()
        .map(|c| c.load(Ordering::Relaxed))
        .unwrap_or(0);
    let mut bytes_sent = 0u64;

    // Fresh, fully cleared intermediate image: rows outside the band double
    // as the warp's guard rows (region.start - 1 and region.end), exactly
    // the rows `NewParallelRenderer` clears before its barrier-free warp.
    let src = VolumeSrc::Flat(enc).for_axis(fact.principal);
    let mut inter = IntermediateImage::new(fact.inter_w, fact.inter_h);
    let opts = CompositeOpts::default();

    // Composite each owned scanline whole: ascending slice order within the
    // row reproduces the serial compositing bit-for-bit (rows are mutually
    // independent). The first row is shipped the moment it completes so the
    // band below can start its warp while we are still compositing.
    for y in band.clone() {
        let mut row = inter.row_view(y);
        for m in 0..fact.slice_count() {
            let k = fact.slice_for_step(m);
            composite_scanline_slice_untraced_src(src, &fact, &mut row, k, &opts);
        }
        if y == band.start && a.send_first_row {
            let payload = encode_inter_row(row.pix);
            bytes_sent += payload.len() as u64;
            write_frame(
                &mut link.writer,
                &Frame {
                    kind: MsgKind::InterRow,
                    shard,
                    epoch,
                    rect: [0, y as u32, fact.inter_w as u32, 1],
                    payload,
                },
            )?;
        }
    }

    // The warp of band [lo, hi) bilinearly reads rows lo-1..=hi; the only
    // row not locally composited or statically clear is `hi` — the first
    // scanline of the band above, routed to us through the coordinator.
    if a.expect_halo && !band.is_empty() {
        loop {
            let f = read_frame(&mut link.reader)?
                .ok_or_else(|| proto("link closed while waiting for halo scanline"))?;
            match f.kind {
                MsgKind::InterRow => {
                    if f.expect_epoch(epoch).is_err() {
                        continue; // stale tile from an abandoned frame
                    }
                    let y = f.rect[1] as usize;
                    if y != band.end {
                        return Err(proto(format!(
                            "halo scanline {y} does not border band {band:?}"
                        )));
                    }
                    let row = inter.row_view(y);
                    decode_inter_row(&f.payload, row.pix)?;
                    break;
                }
                MsgKind::FrameStart => return Ok(AfterFrame::Preempted(f)),
                MsgKind::Shutdown => return Ok(AfterFrame::Shutdown),
                other => {
                    return Err(proto(format!(
                        "unexpected {other:?} frame while waiting for halo"
                    )))
                }
            }
        }
    }

    // Partition-preserving warp of exactly the final pixels this band owns.
    // The first band is extended one row downward (`region.start - 1`, a
    // clear guard row) so pixels mapping just below the region have an
    // owner — the same `extend_band` rule the in-process renderer applies.
    let warp_lo = if band.start == region.start && !band.is_empty() {
        band.start.saturating_sub(1)
    } else {
        band.start
    };
    let warp_band = (warp_lo, band.end);
    let mut fin = FinalImage::new(fact.final_w, fact.final_h);
    if warp_band.0 < warp_band.1 {
        let shared = SharedFinal::new(&mut fin);
        warp_row_band(&inter, &fact, &shared, warp_band, &mut NullTracer);
    }

    // Stream the owned spans back: for each final scanline, the same
    // u-interval the banded warp visited (affine slack + exact per-pixel
    // ownership happened above; here we just ship the interval).
    let mut batch: Vec<FinalSpan> = Vec::new();
    let mut batch_bytes = 0usize;
    if warp_band.0 < warp_band.1 {
        let (lo, hi) = (warp_band.0 as f64, warp_band.1 as f64);
        let w = fact.final_w as i64;
        for v in 0..fact.final_h {
            let Some((ul, uh)) = fact.band_u_interval(v as f64, lo, hi) else {
                continue;
            };
            let u_start = if ul.is_finite() {
                (ul.floor() as i64 - 1).max(0)
            } else {
                0
            };
            let u_end = if uh.is_finite() {
                (uh.ceil() as i64 + 1).min(w)
            } else {
                w
            };
            if u_start >= u_end {
                continue;
            }
            let pixels: Vec<[u8; 4]> = (u_start..u_end).map(|u| fin.get(u as usize, v)).collect();
            batch_bytes += 12 + pixels.len() * 4;
            batch.push(FinalSpan {
                v: v as u32,
                u0: u_start as u32,
                pixels,
            });
            if batch_bytes >= SPAN_FLUSH_BYTES.min(MAX_PAYLOAD / 2) {
                bytes_sent += flush_spans(shard, link, epoch, &mut batch)? as u64;
                batch_bytes = 0;
            }
        }
    }
    if !batch.is_empty() {
        bytes_sent += flush_spans(shard, link, epoch, &mut batch)? as u64;
    }

    let spins_now = link
        .full_spins
        .as_ref()
        .map(|c| c.load(Ordering::Relaxed))
        .unwrap_or(0);
    let report = WorkerFrameReport {
        rows_composited: band.len() as u32,
        ring_full_spins: spins_now - spin_base,
        bytes_sent,
    };
    write_frame(
        &mut link.writer,
        &Frame {
            kind: MsgKind::FrameDone,
            shard,
            epoch,
            rect: [0; 4],
            payload: encode_report(&report),
        },
    )?;
    Ok(AfterFrame::Completed)
}

/// Sends one `FinalSpans` frame and clears the batch; returns payload bytes.
fn flush_spans(
    shard: u16,
    link: &mut Link,
    epoch: u64,
    batch: &mut Vec<FinalSpan>,
) -> Result<usize, Error> {
    let (mut u0, mut v0, mut u1, mut v1) = (u32::MAX, u32::MAX, 0u32, 0u32);
    for s in batch.iter() {
        u0 = u0.min(s.u0);
        v0 = v0.min(s.v);
        u1 = u1.max(s.u0 + s.pixels.len() as u32);
        v1 = v1.max(s.v + 1);
    }
    let payload = encode_final_spans(batch);
    let len = payload.len();
    write_frame(
        &mut link.writer,
        &Frame {
            kind: MsgKind::FinalSpans,
            shard,
            epoch,
            rect: [u0, v0, u1.saturating_sub(u0), v1.saturating_sub(v0)],
            payload,
        },
    )?;
    batch.clear();
    Ok(len)
}
