//! Payload serialization for the shard protocol.
//!
//! Everything is little-endian and fixed-layout. Floating-point values travel
//! as raw IEEE-754 bit patterns (`f64::to_bits` / `from_bits`), so the
//! worker's `Factorization` is constructed from *bit-identical* inputs and
//! every derived coordinate matches the coordinator's — the foundation of
//! the sharded path's bit-exact equivalence with the in-process renderers.

use swr_error::Error;
use swr_geom::{Mat4, Projection, ViewSpec};

fn short(what: &str) -> Error {
    Error::Protocol {
        reason: format!("short payload while decoding {what}"),
    }
}

/// Little-endian payload writer.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> Self {
        PayloadWriter::default()
    }
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn f32_bits(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    /// Length-prefixed UTF-8 string (u16 length).
    pub fn str16(&mut self, s: &str) {
        let b = s.as_bytes();
        self.buf
            .extend_from_slice(&(b.len().min(u16::MAX as usize) as u16).to_le_bytes());
        self.buf
            .extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
    }
    pub fn len(&self) -> usize {
        self.buf.len()
    }
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader; every overrun is a typed
/// [`Error::Protocol`].
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], Error> {
        if self.pos + n > self.buf.len() {
            return Err(short(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub fn u8(&mut self, what: &str) -> Result<u8, Error> {
        Ok(self.take(1, what)?[0])
    }
    pub fn u32(&mut self, what: &str) -> Result<u32, Error> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub fn u64(&mut self, what: &str) -> Result<u64, Error> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    pub fn f64_bits(&mut self, what: &str) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    pub fn f32_bits(&mut self, what: &str) -> Result<f32, Error> {
        Ok(f32::from_bits(self.u32(what)?))
    }
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], Error> {
        self.take(n, what)
    }
    pub fn str16(&mut self, what: &str) -> Result<String, Error> {
        let n = self.take(2, what)?;
        let n = u16::from_le_bytes([n[0], n[1]]) as usize;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::Protocol {
            reason: format!("invalid UTF-8 while decoding {what}"),
        })
    }
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Fails unless the payload was consumed exactly.
    pub fn expect_done(&self, what: &str) -> Result<(), Error> {
        if self.remaining() != 0 {
            return Err(Error::Protocol {
                reason: format!("{} trailing bytes after decoding {what}", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Encodes a [`ViewSpec`] with exact `f64` bit patterns.
pub fn encode_view(w: &mut PayloadWriter, view: &ViewSpec) {
    for d in view.dims {
        w.u64(d as u64);
    }
    for row in view.model.m {
        for v in row {
            w.f64_bits(v);
        }
    }
    w.f64_bits(view.zoom);
    match view.image_size {
        None => w.u8(0),
        Some((iw, ih)) => {
            w.u8(1);
            w.u64(iw as u64);
            w.u64(ih as u64);
        }
    }
    match view.projection {
        Projection::Parallel => w.u8(0),
        Projection::Perspective { distance } => {
            w.u8(1);
            w.f64_bits(distance);
        }
    }
}

/// Decodes a [`ViewSpec`] encoded by [`encode_view`].
pub fn decode_view(r: &mut PayloadReader<'_>) -> Result<ViewSpec, Error> {
    let mut dims = [0usize; 3];
    for d in &mut dims {
        *d = r.u64("view dims")? as usize;
    }
    let mut m = [[0f64; 4]; 4];
    for row in &mut m {
        for v in row.iter_mut() {
            *v = r.f64_bits("view model")?;
        }
    }
    let zoom = r.f64_bits("view zoom")?;
    let image_size = match r.u8("view image_size tag")? {
        0 => None,
        1 => Some((
            r.u64("view image w")? as usize,
            r.u64("view image h")? as usize,
        )),
        t => {
            return Err(Error::Protocol {
                reason: format!("invalid image_size tag {t} in view"),
            })
        }
    };
    let projection = match r.u8("view projection tag")? {
        0 => Projection::Parallel,
        1 => Projection::Perspective {
            distance: r.f64_bits("view eye distance")?,
        },
        t => {
            return Err(Error::Protocol {
                reason: format!("invalid projection tag {t} in view"),
            })
        }
    };
    Ok(ViewSpec {
        dims,
        model: Mat4::from_rows(m),
        zoom,
        image_size,
        projection,
    })
}

/// The per-frame work order the coordinator sends each shard.
#[derive(Debug, Clone)]
pub struct FrameAssignment {
    /// The frame's view (bit-exact).
    pub view: ViewSpec,
    /// Occupied intermediate-image row region `[lo, hi)`.
    pub region: (u32, u32),
    /// This shard's owned band `[lo, hi)` within the region.
    pub band: (u32, u32),
    /// Send the band's first composited scanline to the coordinator for
    /// routing to the owner of the band above (false for the first band).
    pub send_first_row: bool,
    /// Wait for the scanline at `band.1` (the next band's first row) before
    /// warping (false for the last band, whose upper guard row is clear).
    pub expect_halo: bool,
}

/// Encodes a [`FrameAssignment`].
pub fn encode_assignment(a: &FrameAssignment) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    encode_view(&mut w, &a.view);
    w.u32(a.region.0);
    w.u32(a.region.1);
    w.u32(a.band.0);
    w.u32(a.band.1);
    let mut flags = 0u8;
    if a.send_first_row {
        flags |= 1;
    }
    if a.expect_halo {
        flags |= 2;
    }
    w.u8(flags);
    w.finish()
}

/// Decodes a [`FrameAssignment`].
pub fn decode_assignment(buf: &[u8]) -> Result<FrameAssignment, Error> {
    let mut r = PayloadReader::new(buf);
    let view = decode_view(&mut r)?;
    let region = (r.u32("region lo")?, r.u32("region hi")?);
    let band = (r.u32("band lo")?, r.u32("band hi")?);
    let flags = r.u8("assignment flags")?;
    r.expect_done("frame assignment")?;
    if region.0 > region.1 || band.0 > band.1 || band.0 < region.0 || band.1 > region.1 {
        return Err(Error::Protocol {
            reason: format!(
                "inconsistent assignment: band {:?} outside region {:?}",
                band, region
            ),
        });
    }
    Ok(FrameAssignment {
        view,
        region,
        band,
        send_first_row: flags & 1 != 0,
        expect_halo: flags & 2 != 0,
    })
}

/// Encodes one intermediate scanline (premultiplied RGBA `f32`s, exact bits).
pub fn encode_inter_row(pix: &[swr_render::IPixel]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(pix.len() as u32);
    for p in pix {
        w.f32_bits(p.r);
        w.f32_bits(p.g);
        w.f32_bits(p.b);
        w.f32_bits(p.a);
    }
    w.finish()
}

/// Decodes an intermediate scanline into `out` (must match the encoded
/// width — a mismatch means the peer disagrees about the factorization).
pub fn decode_inter_row(buf: &[u8], out: &mut [swr_render::IPixel]) -> Result<(), Error> {
    let mut r = PayloadReader::new(buf);
    let n = r.u32("inter row width")? as usize;
    if n != out.len() {
        return Err(Error::Protocol {
            reason: format!(
                "inter row width mismatch: peer sent {n}, local image has {}",
                out.len()
            ),
        });
    }
    for p in out.iter_mut() {
        p.r = r.f32_bits("inter row r")?;
        p.g = r.f32_bits("inter row g")?;
        p.b = r.f32_bits("inter row b")?;
        p.a = r.f32_bits("inter row a")?;
    }
    r.expect_done("inter row")?;
    Ok(())
}

/// One horizontal run of final-image pixels at row `v` starting at `u0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinalSpan {
    pub v: u32,
    pub u0: u32,
    pub pixels: Vec<[u8; 4]>,
}

/// Encodes a batch of final spans.
pub fn encode_final_spans(spans: &[FinalSpan]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(spans.len() as u32);
    for s in spans {
        w.u32(s.v);
        w.u32(s.u0);
        w.u32(s.pixels.len() as u32);
        for p in &s.pixels {
            w.bytes(p);
        }
    }
    w.finish()
}

/// Decodes a batch of final spans.
pub fn decode_final_spans(buf: &[u8]) -> Result<Vec<FinalSpan>, Error> {
    let mut r = PayloadReader::new(buf);
    let count = r.u32("span count")? as usize;
    // Each span costs at least 12 header bytes; reject counts the payload
    // cannot possibly hold before reserving anything.
    if count > buf.len() / 12 {
        return Err(Error::Protocol {
            reason: format!("span count {count} exceeds payload capacity"),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = r.u32("span v")?;
        let u0 = r.u32("span u0")?;
        let n = r.u32("span len")? as usize;
        let bytes = r.bytes(n * 4, "span pixels")?;
        let mut pixels = Vec::with_capacity(n);
        for c in bytes.chunks_exact(4) {
            pixels.push([c[0], c[1], c[2], c[3]]);
        }
        out.push(FinalSpan { v, u0, pixels });
    }
    r.expect_done("final spans")?;
    Ok(out)
}

/// Per-frame transport statistics a worker reports with `FrameDone`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFrameReport {
    /// Scanlines the worker composited.
    pub rows_composited: u32,
    /// Busy-wait spins on a full shared-memory ring (0 on sockets).
    pub ring_full_spins: u64,
    /// Payload bytes the worker sent this frame.
    pub bytes_sent: u64,
}

/// Encodes a [`WorkerFrameReport`].
pub fn encode_report(rep: &WorkerFrameReport) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(rep.rows_composited);
    w.u64(rep.ring_full_spins);
    w.u64(rep.bytes_sent);
    w.finish()
}

/// Decodes a [`WorkerFrameReport`].
pub fn decode_report(buf: &[u8]) -> Result<WorkerFrameReport, Error> {
    let mut r = PayloadReader::new(buf);
    let rep = WorkerFrameReport {
        rows_composited: r.u32("report rows")?,
        ring_full_spins: r.u64("report spins")?,
        bytes_sent: r.u64("report bytes")?,
    };
    r.expect_done("frame report")?;
    Ok(rep)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn awkward_view() -> ViewSpec {
        // Rotation angles chosen so every matrix entry is an "ugly" float;
        // bit-exactness of the round trip is the whole point.
        let mut v = ViewSpec::new([41, 37, 23]);
        v.model = Mat4::rotation_y(0.7342871) * Mat4::rotation_z(1.9812345) * v.model;
        v.zoom = 1.37500001;
        v.image_size = Some((129, 67));
        v.projection = Projection::Perspective {
            distance: 123.4567890123,
        };
        v
    }

    #[test]
    fn view_round_trip_is_bit_exact() {
        for view in [ViewSpec::new([8, 8, 8]), awkward_view()] {
            let mut w = PayloadWriter::new();
            encode_view(&mut w, &view);
            let buf = w.finish();
            let mut r = PayloadReader::new(&buf);
            let back = decode_view(&mut r).unwrap();
            r.expect_done("view").unwrap();
            assert_eq!(back.dims, view.dims);
            assert_eq!(back.zoom.to_bits(), view.zoom.to_bits());
            assert_eq!(back.image_size, view.image_size);
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(back.model.m[i][j].to_bits(), view.model.m[i][j].to_bits());
                }
            }
            match (back.projection, view.projection) {
                (Projection::Parallel, Projection::Parallel) => {}
                (
                    Projection::Perspective { distance: a },
                    Projection::Perspective { distance: b },
                ) => assert_eq!(a.to_bits(), b.to_bits()),
                other => panic!("projection mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn assignment_round_trip() {
        let a = FrameAssignment {
            view: awkward_view(),
            region: (3, 210),
            band: (50, 120),
            send_first_row: true,
            expect_halo: true,
        };
        let back = decode_assignment(&encode_assignment(&a)).unwrap();
        assert_eq!(back.region, a.region);
        assert_eq!(back.band, a.band);
        assert!(back.send_first_row && back.expect_halo);
    }

    #[test]
    fn assignment_band_outside_region_rejected() {
        let a = FrameAssignment {
            view: ViewSpec::new([8, 8, 8]),
            region: (10, 20),
            band: (5, 15),
            send_first_row: false,
            expect_halo: false,
        };
        assert!(matches!(
            decode_assignment(&encode_assignment(&a)),
            Err(swr_error::Error::Protocol { .. })
        ));
    }

    #[test]
    fn inter_row_round_trip_and_width_check() {
        let pix: Vec<swr_render::IPixel> = (0..64)
            .map(|i| swr_render::IPixel {
                r: (i as f32 * 0.017).fract(),
                g: 0.5,
                b: f32::MIN_POSITIVE, // subnormal-adjacent bits survive
                a: 1.0 - (i as f32 * 0.003),
            })
            .collect();
        let buf = encode_inter_row(&pix);
        let mut out = vec![swr_render::IPixel::CLEAR; 64];
        decode_inter_row(&buf, &mut out).unwrap();
        for (a, b) in pix.iter().zip(&out) {
            assert_eq!(a.r.to_bits(), b.r.to_bits());
            assert_eq!(a.a.to_bits(), b.a.to_bits());
        }
        let mut wrong = vec![swr_render::IPixel::CLEAR; 63];
        assert!(matches!(
            decode_inter_row(&buf, &mut wrong),
            Err(swr_error::Error::Protocol { .. })
        ));
    }

    #[test]
    fn final_spans_round_trip() {
        let spans = vec![
            FinalSpan {
                v: 0,
                u0: 3,
                pixels: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            },
            FinalSpan {
                v: 77,
                u0: 0,
                pixels: vec![],
            },
        ];
        assert_eq!(
            decode_final_spans(&encode_final_spans(&spans)).unwrap(),
            spans
        );
    }

    #[test]
    fn short_payloads_are_typed_errors() {
        let spans = vec![FinalSpan {
            v: 1,
            u0: 2,
            pixels: vec![[9, 9, 9, 9]; 5],
        }];
        let buf = encode_final_spans(&spans);
        for cut in 0..buf.len() {
            match decode_final_spans(&buf[..cut]) {
                Err(swr_error::Error::Protocol { .. }) => {}
                Ok(_) if cut == buf.len() => {}
                other => panic!("cut {cut}: expected Protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_round_trip() {
        let rep = WorkerFrameReport {
            rows_composited: 41,
            ring_full_spins: 1_000_000_007,
            bytes_sent: u64::MAX / 3,
        };
        assert_eq!(decode_report(&encode_report(&rep)).unwrap(), rep);
    }
}
