//! The framed tile protocol: a fixed-size length-prefixed header carrying an
//! epoch, the sending shard, a tile rectangle, and an FNV-1a checksum of the
//! payload, followed by the payload bytes.
//!
//! The codec is transport-agnostic — it reads and writes through plain
//! [`std::io::Read`] / [`std::io::Write`], so the same frames flow over a
//! Unix-domain socket and over the shared-memory ring. Every malformed input
//! (bad magic, unknown version or kind, oversized payload, truncated read,
//! checksum mismatch) surfaces as a typed [`Error::Protocol`] — never a
//! panic — so a corrupted or byzantine peer degrades the run instead of
//! killing the coordinator.
//!
//! ## Wire layout (little-endian, 44-byte header)
//!
//! ```text
//! offset  size  field
//!      0     4  magic       0x44525753 ("SWRD")
//!      4     1  version     1
//!      5     1  kind        MsgKind discriminant
//!      6     2  shard       sending shard id
//!      8     8  epoch       frame epoch the tile belongs to
//!     16    16  rect        x0, y0, w, h (u32 each; meaning is per-kind)
//!     32     4  len         payload length in bytes
//!     36     8  checksum    FNV-1a 64 of the payload bytes
//!     44   len  payload
//! ```

use std::io::{Read, Write};
use swr_error::Error;

/// Header magic: `"SWRD"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SWRD");
/// Protocol version.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 44;
/// Maximum accepted payload size. A tile larger than this is rejected
/// *before* any allocation, so a corrupted length field cannot OOM the
/// receiver.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// FNV-1a 64-bit hash of `bytes` (the frame checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Message kinds of the shard protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Worker → coordinator: "I am connected" (rect unused).
    Hello = 1,
    /// Coordinator → worker: scene description (phantom, seed, transfer);
    /// the worker rebuilds the classified, encoded volume locally.
    SessionStart = 2,
    /// Coordinator → worker: view + region + band assignment for one frame.
    FrameStart = 3,
    /// A composited intermediate scanline routed to the owner of the band
    /// below (the halo the paper's partition-preserving warp reads). Rect is
    /// `(0, y, width, 1)`.
    InterRow = 4,
    /// Worker → coordinator: the warped final-image spans of the worker's
    /// band. Rect is the bounding box of the spans.
    FinalSpans = 5,
    /// Worker → coordinator: band complete, with per-frame transport stats.
    FrameDone = 6,
    /// Coordinator → worker: exit the event loop.
    Shutdown = 7,
}

impl MsgKind {
    fn from_u8(v: u8) -> Option<MsgKind> {
        Some(match v {
            1 => MsgKind::Hello,
            2 => MsgKind::SessionStart,
            3 => MsgKind::FrameStart,
            4 => MsgKind::InterRow,
            5 => MsgKind::FinalSpans,
            6 => MsgKind::FrameDone,
            7 => MsgKind::Shutdown,
            _ => return None,
        })
    }
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: MsgKind,
    /// Sending shard id (coordinator uses `u16::MAX`).
    pub shard: u16,
    /// Frame epoch the message belongs to.
    pub epoch: u64,
    /// Tile rectangle `(x0, y0, w, h)`; interpretation is per-kind.
    pub rect: [u32; 4],
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Shard id the coordinator stamps on frames it originates or forwards.
pub const COORDINATOR_ID: u16 = u16::MAX;

impl Frame {
    /// A frame with an empty payload.
    pub fn control(kind: MsgKind, shard: u16, epoch: u64) -> Frame {
        Frame {
            kind,
            shard,
            epoch,
            rect: [0; 4],
            payload: Vec::new(),
        }
    }

    /// Verifies the frame belongs to the current epoch; a stale tile (from a
    /// frame the coordinator already finished or abandoned) is a typed error
    /// the receiver turns into a counted drop, never a composite.
    pub fn expect_epoch(&self, current: u64) -> Result<(), Error> {
        if self.epoch != current {
            return Err(Error::Protocol {
                reason: format!(
                    "stale tile: epoch {} from shard {} (current epoch {})",
                    self.epoch, self.shard, current
                ),
            });
        }
        Ok(())
    }
}

fn proto_err(reason: impl Into<String>) -> Error {
    Error::Protocol {
        reason: reason.into(),
    }
}

/// Encodes `frame` into the wire layout.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, Error> {
    if frame.payload.len() > MAX_PAYLOAD {
        return Err(proto_err(format!(
            "refusing to encode oversized tile: {} bytes exceeds the {} byte cap",
            frame.payload.len(),
            MAX_PAYLOAD
        )));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.shard.to_le_bytes());
    out.extend_from_slice(&frame.epoch.to_le_bytes());
    for r in frame.rect {
        out.extend_from_slice(&r.to_le_bytes());
    }
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&frame.payload).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    Ok(out)
}

/// Writes one frame to `w`.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), Error> {
    let bytes = encode_frame(frame)?;
    w.write_all(&bytes).map_err(Error::from)?;
    w.flush().map_err(Error::from)?;
    Ok(())
}

fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(a)
}

/// Decodes a header, returning `(frame-with-empty-payload, payload_len,
/// checksum)`. Shared by the streaming reader and the slice decoder.
fn decode_header(hdr: &[u8; HEADER_LEN]) -> Result<(Frame, usize, u64), Error> {
    let magic = le_u32(hdr, 0);
    if magic != MAGIC {
        return Err(proto_err(format!(
            "malformed header: bad magic {magic:#010x} (expected {MAGIC:#010x})"
        )));
    }
    if hdr[4] != VERSION {
        return Err(proto_err(format!(
            "malformed header: unsupported protocol version {} (expected {VERSION})",
            hdr[4]
        )));
    }
    let kind = MsgKind::from_u8(hdr[5])
        .ok_or_else(|| proto_err(format!("malformed header: unknown message kind {}", hdr[5])))?;
    let shard = u16::from_le_bytes([hdr[6], hdr[7]]);
    let epoch = le_u64(hdr, 8);
    let rect = [
        le_u32(hdr, 16),
        le_u32(hdr, 20),
        le_u32(hdr, 24),
        le_u32(hdr, 28),
    ];
    let len = le_u32(hdr, 32) as usize;
    if len > MAX_PAYLOAD {
        return Err(proto_err(format!(
            "oversized tile rejected: payload of {len} bytes exceeds the {MAX_PAYLOAD} byte cap"
        )));
    }
    let checksum = le_u64(hdr, 36);
    Ok((
        Frame {
            kind,
            shard,
            epoch,
            rect,
            payload: Vec::new(),
        },
        len,
        checksum,
    ))
}

/// Reads one frame from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary — how a worker observes an orderly coordinator shutdown and the
/// coordinator observes a dead worker). EOF *inside* a frame is a truncated
/// read and yields [`Error::Protocol`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, Error> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut hdr[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(proto_err(format!(
                    "truncated frame: stream ended after {got} of {HEADER_LEN} header bytes"
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::from(e)),
        }
    }
    let (mut frame, len, checksum) = decode_header(&hdr)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            proto_err(format!(
                "truncated frame: stream ended inside a {len}-byte payload"
            ))
        } else {
            Error::from(e)
        }
    })?;
    let actual = fnv1a64(&payload);
    if actual != checksum {
        return Err(proto_err(format!(
            "checksum mismatch on {:?} tile from shard {}: header says {checksum:#018x}, \
             payload hashes to {actual:#018x}",
            frame.kind, frame.shard
        )));
    }
    frame.payload = payload;
    Ok(Some(frame))
}

/// Decodes one frame from an in-memory byte slice (tests and diagnostics).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, Error> {
    let mut cursor = bytes;
    match read_frame(&mut cursor)? {
        Some(f) => Ok(f),
        None => Err(proto_err("truncated frame: empty buffer")),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn sample() -> Frame {
        Frame {
            kind: MsgKind::InterRow,
            shard: 3,
            epoch: 17,
            rect: [0, 42, 128, 1],
            payload: (0..=255u8).cycle().take(2048).collect(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let f = sample();
        let bytes = encode_frame(&f).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + f.payload.len());
        let g = decode_frame(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = Frame::control(MsgKind::Shutdown, COORDINATOR_ID, 9);
        let g = decode_frame(&encode_frame(&f).unwrap()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn clean_eof_is_none() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn bad_magic_is_typed_protocol_error() {
        let mut bytes = encode_frame(&sample()).unwrap();
        bytes[0] ^= 0xff;
        match decode_frame(&bytes) {
            Err(Error::Protocol { reason }) => assert!(reason.contains("bad magic"), "{reason}"),
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_is_typed_protocol_error() {
        let mut bytes = encode_frame(&sample()).unwrap();
        bytes[4] = 99;
        match decode_frame(&bytes) {
            Err(Error::Protocol { reason }) => assert!(reason.contains("version"), "{reason}"),
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_typed_protocol_error() {
        let mut bytes = encode_frame(&sample()).unwrap();
        bytes[5] = 200;
        match decode_frame(&bytes) {
            Err(Error::Protocol { reason }) => {
                assert!(reason.contains("unknown message kind"), "{reason}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_typed_protocol_error() {
        let bytes = encode_frame(&sample()).unwrap();
        for cut in [1, HEADER_LEN / 2, HEADER_LEN - 1] {
            match decode_frame(&bytes[..cut]) {
                Err(Error::Protocol { reason }) => {
                    assert!(reason.contains("truncated"), "cut {cut}: {reason}")
                }
                other => panic!("cut {cut}: expected Protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_payload_is_typed_protocol_error() {
        let bytes = encode_frame(&sample()).unwrap();
        let cut = bytes.len() - 7;
        match decode_frame(&bytes[..cut]) {
            Err(Error::Protocol { reason }) => {
                assert!(reason.contains("truncated"), "{reason}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_is_typed_protocol_error() {
        let mut bytes = encode_frame(&sample()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit
        match decode_frame(&bytes) {
            Err(Error::Protocol { reason }) => {
                assert!(reason.contains("checksum mismatch"), "{reason}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_tile_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::control(MsgKind::FinalSpans, 0, 1)).unwrap();
        // Forge a length far beyond the cap; the payload is absent, but the
        // length check must fire before any read or allocation is attempted.
        bytes[32..36].copy_from_slice(&(u32::MAX).to_le_bytes());
        match decode_frame(&bytes) {
            Err(Error::Protocol { reason }) => {
                assert!(reason.contains("oversized tile"), "{reason}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
        // Encoding an oversized payload is refused symmetrically.
        let fat = Frame {
            payload: vec![0u8; MAX_PAYLOAD + 1],
            ..Frame::control(MsgKind::FinalSpans, 0, 1)
        };
        assert!(matches!(encode_frame(&fat), Err(Error::Protocol { .. })));
    }

    #[test]
    fn stale_epoch_is_typed_protocol_error() {
        let f = sample(); // epoch 17
        assert!(f.expect_epoch(17).is_ok());
        match f.expect_epoch(18) {
            Err(Error::Protocol { reason }) => assert!(reason.contains("stale tile"), "{reason}"),
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_stream_never_panics() {
        // Fuzz-ish: feed deterministic garbage of many lengths; every outcome
        // must be a typed error or a decoded frame, never a panic.
        let mut junk = Vec::new();
        let mut x: u32 = 0x2545_f491;
        for len in 0..200usize {
            junk.clear();
            for _ in 0..len {
                x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
                junk.push((x >> 16) as u8);
            }
            let mut cursor: &[u8] = &junk;
            let _ = read_frame(&mut cursor);
        }
    }
}
