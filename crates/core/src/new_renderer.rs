//! The *new* parallel shear-warp renderer (§4), native threaded execution.
//!
//! Frame structure:
//!
//! 1. **Partition** — from the last collected per-scanline work profile,
//!    compute contiguous, predictively balanced partitions of the occupied
//!    band of the intermediate image (cumulative profile via prefix sum +
//!    equal-area boundaries, §4.3). Without a valid profile (first frame, or
//!    the intermediate image changed size) equal-count partitions are used.
//! 2. **Composite** — each processor works through its own partition from
//!    the front, in chunks (the steal unit); idle processors steal chunks
//!    from the *back* of the fullest victim (§4.4). Every `k` frames the
//!    compositor also collects the per-scanline work profile (§4.2),
//!    including its modeled instruction overhead.
//! 3. **Warp, without a barrier** (§4.5) — each processor warps exactly the
//!    final-image pixels owned by its partition band. Readiness is tracked
//!    with per-scanline completion flags, so a processor starts warping as
//!    soon as the rows its band reads (its own plus the first row of the
//!    next band) are composited — the global barrier is gone.
//!
//! # Fault containment
//!
//! Each worker runs its compositing and warp under `catch_unwind`. A
//! panicking worker records its payload, retires from the compositor count,
//! and leaves its unfinished rows flagged incomplete; survivors keep
//! working (with stealing enabled they usually drain most of the failed
//! worker's queue). Waiters on the completion flags cannot spin forever:
//! once every compositor has retired, an incomplete row is provably lost
//! and the waiter reports it at once; a configurable watchdog timeout
//! bounds every other wait. After the join, the frame is resolved — lost
//! rows are re-composited serially (slice order per row matches the worker
//! loop, so the repair is bit-identical) and unwarped bands re-warped, or a
//! typed [`enum@Error`] is returned. See the crate docs' *Failure model*.

use crate::fault::FaultPlan;
use crate::old_renderer::StealQueue;
use crate::pad::CachePadded;
use crate::partition::{balanced_contiguous, equal_contiguous, partition_chunks};
use crate::placement::{pin_current_thread, PinLedger};
use crate::prefix::parallel_prefix_sum;
use crate::telem;
use crate::{Error, ParallelConfig, RenderStats};
use parking_lot::Mutex;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use swr_error::panic_message;
use swr_geom::{Factorization, ViewSpec};
use swr_render::{
    composite::occupied_y_bounds_src, composite_scanline_slice_src,
    composite_scanline_slice_untraced_src, warp_row_band, AxisSrc, CompositeOpts, FinalImage,
    IntermediateImage, NullTracer, SharedFinal, SharedIntermediate, VolumeSrc,
};
use swr_telemetry::{us_to_secs, FrameClock, FrameTelemetry, SpanKind};
use swr_volume::EncodedVolume;

/// Row-claim sentinel: no worker ever claimed the row.
pub(crate) const UNCLAIMED: usize = usize::MAX;

/// Per-frame shared scheduler state, owned by the renderer and reused across
/// frames so an animation loop allocates nothing per frame once the image
/// size settles. The row-claim slots and steal queues are cache-line padded:
/// they are the hottest cross-worker state, and packing them densely would
/// reintroduce exactly the false sharing §5 of the paper measures.
///
/// Completion flags are **epoch counters**, not booleans: a row (or a
/// worker's warp) is complete for frame epoch `e` when its flag holds a
/// value `>= e`. Epochs strictly increase across an animation, so a flag
/// left over from an earlier frame in a reused scratch can never satisfy a
/// later frame's wait — the invariant the pipelined renderer's two-frame
/// in-flight window depends on.
#[derive(Debug, Default)]
pub(crate) struct FrameScratch {
    /// Per-row completion epochs (the new algorithm's barrier replacement).
    pub(crate) rows_done: Vec<AtomicU64>,
    /// Which worker last claimed each row (stall diagnostics).
    pub(crate) row_claim: Vec<CachePadded<AtomicUsize>>,
    /// Profile collection target on profiling frames; empty otherwise.
    pub(crate) new_profile: Vec<AtomicU64>,
    /// Per-worker warp completion epochs (repair bookkeeping).
    pub(crate) warp_done: Vec<AtomicU64>,
    /// Per-worker steal queues.
    pub(crate) queues: Vec<StealQueue>,
}

impl FrameScratch {
    /// Prepares for a frame of `h` intermediate rows and `nprocs` workers
    /// at the given epoch. Rows outside `region` are marked complete at
    /// `epoch` immediately; rows inside keep whatever older epoch they
    /// carry (strictly smaller, since epochs only grow), so completion
    /// state needs no per-row zeroing between frames.
    pub(crate) fn prepare(
        &mut self,
        h: usize,
        nprocs: usize,
        region: &Range<usize>,
        profiling: bool,
        epoch: u64,
    ) {
        self.rows_done.resize_with(h, AtomicU64::default);
        for (y, flag) in self.rows_done.iter_mut().enumerate() {
            if !region.contains(&y) {
                *flag.get_mut() = epoch;
            }
        }
        self.row_claim
            .resize_with(h, || CachePadded::new(AtomicUsize::new(UNCLAIMED)));
        for claim in self.row_claim.iter_mut() {
            *claim.get_mut() = UNCLAIMED;
        }
        self.new_profile.clear();
        if profiling {
            self.new_profile.resize_with(h, AtomicU64::default);
        }
        self.warp_done.resize_with(nprocs, AtomicU64::default);
        self.queues.resize_with(nprocs, StealQueue::default);
    }
}

/// What a worker's wait on the completion flags concluded.
pub(crate) enum WaitOutcome {
    /// All rows the band reads are composited.
    Ready,
    /// The row can never complete (all compositors retired) or the watchdog
    /// timeout expired while waiting on it.
    Stalled { row: usize, waited_ms: u64 },
}

/// The new parallel renderer. Holds the work profile across frames, as an
/// animation loop would.
#[derive(Debug, Default)]
pub struct NewParallelRenderer {
    /// Configuration (processor count, steal chunk, profile period).
    pub cfg: ParallelConfig,
    /// Compositing options (early termination, depth cueing).
    pub composite_opts: CompositeOpts,
    /// Deterministic fault injection for the containment tests.
    pub fault: Option<FaultPlan>,
    /// Telemetry of the most recent frame: per-worker spans plus the
    /// metrics registry. `None` until a frame completes. With the
    /// `telemetry` feature off the spans are absent (recording compiles
    /// away) but the metrics registry is still populated from the stats.
    pub last_telemetry: Option<FrameTelemetry>,
    inter: Option<IntermediateImage>,
    scratch: FrameScratch,
    /// Monotone frame counter tagging this renderer's completion epochs.
    frame_epoch: u64,
    /// Partition staging buffer (the profile slice fed to the prefix sum),
    /// reused across frames.
    cum_profile: Vec<u64>,
    profile: Vec<u64>,
    profile_valid: bool,
    frames_since_profile: usize,
    /// Model matrix of the last profiled frame (for the angle-based
    /// staleness policy).
    last_profile_model: Option<swr_geom::Mat4>,
}

impl NewParallelRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        NewParallelRenderer {
            cfg,
            ..Default::default()
        }
    }

    /// The per-scanline profile from the last profiled frame, if any.
    pub fn profile(&self) -> Option<&[u64]> {
        self.profile_valid.then_some(self.profile.as_slice())
    }

    /// Forces the next frame to collect a fresh profile.
    pub fn invalidate_profile(&mut self) {
        self.profile_valid = false;
    }

    /// Renders one frame, panicking on any fault (legacy API).
    pub fn render(&mut self, enc: &EncodedVolume, view: &ViewSpec) -> FinalImage {
        self.try_render(enc, view).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders one frame with statistics, panicking on any fault
    /// (legacy API).
    pub fn render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> (FinalImage, RenderStats) {
        self.try_render_with_stats(enc, view)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders one frame, returning a typed error on invalid inputs,
    /// unrecovered worker panics, or a stalled scheduler.
    pub fn try_render(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> Result<FinalImage, Error> {
        self.try_render_with_stats(enc, view).map(|(img, _)| img)
    }

    /// Renders one frame from either storage layout (legacy panicking
    /// form).
    pub fn render_src(&mut self, src: VolumeSrc<'_>, view: &ViewSpec) -> FinalImage {
        self.try_render_with_stats_src(src, view)
            .map(|(img, _)| img)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders one frame, returning execution statistics (including any
    /// recorded degradation) or a typed error.
    pub fn try_render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> Result<(FinalImage, RenderStats), Error> {
        self.try_render_with_stats_src(VolumeSrc::Flat(enc), view)
    }

    /// [`Self::try_render_with_stats`] from either storage layout.
    pub fn try_render_with_stats_src(
        &mut self,
        src: VolumeSrc<'_>,
        view: &ViewSpec,
    ) -> Result<(FinalImage, RenderStats), Error> {
        self.cfg.try_validate()?;
        view.try_validate()?;
        let fact = Factorization::from_view(view);
        let rle = src.for_axis(fact.principal);
        let nprocs = self.cfg.nprocs;
        let h = fact.inter_h;

        // The intermediate image is *not* cleared here: each worker zeroes
        // the rows of a chunk the first time it touches them (see
        // `composite_chunk_rows`), and the driver clears only the two guard
        // rows the warp reads beyond the composited region.
        let inter = match &mut self.inter {
            Some(img) if img.width() == fact.inter_w && img.height() == h => {
                self.inter.as_mut().expect("checked above")
            }
            slot => {
                *slot = Some(IntermediateImage::new(fact.inter_w, h));
                slot.as_mut().expect("just set")
            }
        };
        let mut out = FinalImage::new(fact.final_w, fact.final_h);
        let mut stats = RenderStats::default();

        // §4.2: composite only the occupied band of the intermediate image.
        let region: Range<usize> = if self.cfg.empty_region_clip {
            match occupied_y_bounds_src(rle, &fact) {
                Some((lo, hi)) => lo..hi + 1,
                None => return Ok((out, stats)), // empty volume: nothing to draw
            }
        } else {
            0..h
        };

        // Profile staleness policy: refresh on startup, whenever the
        // intermediate image geometry changed, and then either every k
        // frames or — the paper's own choice — once the viewpoint has
        // rotated far enough since the last profiled frame (§4.2).
        let have_profile = self.profile_valid && self.profile.len() == h;
        let stale = match (self.cfg.profile_every_degrees, &self.last_profile_model) {
            (Some(deg), Some(last)) => last.rotation_angle_to(&view.model).to_degrees() >= deg,
            (Some(_), None) => true,
            (None, _) => self.frames_since_profile + 1 >= self.cfg.profile_every,
        };
        let profiling = self.cfg.profiled_partition && (!have_profile || stale);
        stats.profiled = profiling;

        let collect = telem::collect();
        let clock = FrameClock::new();
        let mut driver = telem::driver_log();
        let logs = telem::worker_logs(nprocs);

        // §4.3: contiguous, predictively balanced partitions.
        let part_start = clock.now_us();
        let partitions: Vec<Range<usize>> = if self.cfg.profiled_partition && have_profile {
            self.cum_profile.clear();
            self.cum_profile
                .extend_from_slice(&self.profile[region.clone()]);
            let cum_profile = &mut self.cum_profile;
            if let Some(fp) = &self.fault {
                if fp.zero_profile {
                    cum_profile.fill(0);
                }
                if fp.corrupt_profile {
                    fp.scramble(cum_profile);
                }
            }
            // The cumulative curve itself is computed with the parallel
            // prefix (its result equals the serial scan; balanced_contiguous
            // re-derives boundaries from the same values).
            let _cum = parallel_prefix_sum(cum_profile, nprocs);
            balanced_contiguous(region.clone(), cum_profile, nprocs)
        } else {
            equal_contiguous(region.clone(), nprocs)
        };
        let chunk_rows = self.cfg.effective_chunk_rows(region.len().max(1));

        // Per-frame shared state: completion flags, claim slots, profile
        // counters, warp flags, steal queues — all reused from last frame,
        // distinguished by this frame's epoch.
        self.frame_epoch += 1;
        let epoch = self.frame_epoch;
        self.scratch.prepare(h, nprocs, &region, profiling, epoch);
        // Guard rows: the extended first band bilinearly reads row
        // `region.start - 1` and the last band reads row `region.end`;
        // neither is composited, so both must be clear even when the image
        // carries a previous frame's pixels.
        if region.start > 0 {
            inter.clear_row(region.start - 1);
        }
        if region.end < h {
            inter.clear_row(region.end);
        }
        for (queue, chunks) in self
            .scratch
            .queues
            .iter_mut()
            .zip(partition_chunks(&partitions, chunk_rows))
        {
            let q = queue.get_mut();
            q.clear();
            q.extend(chunks);
        }
        if let Some(n) = self.fault.as_ref().and_then(|fp| fp.truncate_queue) {
            let q = self.scratch.queues[0].get_mut();
            for _ in 0..n {
                q.pop_back();
            }
        }
        let FrameScratch {
            rows_done,
            row_claim,
            new_profile,
            warp_done,
            queues,
        } = &self.scratch;
        if collect {
            driver.record(
                SpanKind::Partition,
                part_start,
                clock.now_us(),
                region.start as u32,
                region.len() as u32,
            );
        }

        // Containment state: compositors still running (a waiter that sees 0
        // with its row incomplete has proven the row lost), worker panic
        // payloads, and the first stall observed. The hot shared counters
        // each own their cache line.
        let active = CachePadded::new(AtomicUsize::new(nprocs));
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let stalled: Mutex<Option<(usize, u64)>> = Mutex::new(None);

        let steals = CachePadded::new(AtomicU64::new(0));
        let composited = CachePadded::new(AtomicU64::new(0));
        // Worker pin outcomes for the core.pinned / core.numa_node gauges.
        let pins = PinLedger::new();
        let placement = self.cfg.placement;
        // Waits entered with the watchdog timeout armed (a backstop metric:
        // nonzero arms with zero stalls means the watchdog never fired).
        let watchdog_arms = CachePadded::new(AtomicU64::new(0));
        let opts = CompositeOpts {
            profile: profiling,
            ..self.composite_opts
        };
        let watchdog = self.cfg.watchdog_timeout;
        {
            let shared = SharedIntermediate::new(inter);
            let shared_out = SharedFinal::new(&mut out);
            let fact = &fact;
            let partitions = &partitions;
            let region = &region;
            let fault = self.fault.as_ref();
            crossbeam::scope(|s| {
                #[allow(clippy::needless_range_loop)]
                for p in 0..nprocs {
                    let steals: &AtomicU64 = &steals;
                    let composited: &AtomicU64 = &composited;
                    let shared = &shared;
                    let shared_out = &shared_out;
                    let active: &AtomicUsize = &active;
                    let panics = &panics;
                    let stalled = &stalled;
                    let watchdog_arms: &AtomicU64 = &watchdog_arms;
                    let logs = &logs;
                    let clock = &clock;
                    let steal = self.cfg.steal;
                    let pins = &pins;
                    s.spawn(move |_| {
                        // Pin before the first-touch row zeroing below, so
                        // the pages a worker faults in stay local to the
                        // CPU that composites them for the whole frame.
                        pins.record(pin_current_thread(placement, p, nprocs));
                        // Checked out once per frame; recording into it is
                        // lock-free from here on.
                        let mut wlog = logs[p].lock();
                        let wlog = &mut *wlog;
                        let compose = catch_unwind(AssertUnwindSafe(|| {
                            let mut local_pixels = 0u64;
                            while let Some((rows, victim)) =
                                crate::old_renderer::pop_or_steal(p, queues, steal, steals, None)
                            {
                                let chunk_start = if collect { clock.now_us() } else { 0 };
                                if let Some(v) = victim {
                                    if collect {
                                        wlog.mark(
                                            SpanKind::Steal,
                                            chunk_start,
                                            v as u32,
                                            rows.start as u32,
                                        );
                                    }
                                }
                                if let Some(fp) = fault {
                                    fp.on_task(p);
                                }
                                for y in rows.clone() {
                                    row_claim[y].store(p, Ordering::Relaxed);
                                }
                                local_pixels += composite_chunk_rows(
                                    rle,
                                    fact,
                                    shared,
                                    rows.clone(),
                                    &opts,
                                    profiling,
                                    new_profile,
                                );
                                if collect {
                                    // A profiling frame's compositing doubles
                                    // as profile collection (§4.2) — label it
                                    // so traces show the overhead.
                                    wlog.record(
                                        if profiling {
                                            SpanKind::Profile
                                        } else {
                                            SpanKind::Composite
                                        },
                                        chunk_start,
                                        clock.now_us(),
                                        rows.start as u32,
                                        rows.len() as u32,
                                    );
                                }
                                for y in rows {
                                    rows_done[y].store(epoch, Ordering::Release);
                                }
                            }
                            composited.fetch_add(local_pixels, Ordering::Relaxed);
                        }));
                        // Retire from the compositor count whatever happened:
                        // the waiters' lost-row proof depends on every worker
                        // reaching zero. The Release RMW chain means a waiter
                        // that loads 0 sees every row flag stored above.
                        active.fetch_sub(1, Ordering::Release);
                        if let Err(payload) = compose {
                            panics.lock().push((p, panic_message(payload.as_ref())));
                            return;
                        }

                        // §4.5: warp the own band as soon as the rows it
                        // reads are composited — no global barrier. The first
                        // band extends one row below the clipped region:
                        // final pixels just under it bilinearly read the
                        // region's first composited row.
                        let mut band = partitions[p].clone();
                        if band.is_empty() {
                            warp_done[p].store(epoch, Ordering::Release);
                            return;
                        }
                        extend_band(&mut band, region.start);
                        let wait_hi = band.end.min(h - 1);
                        if watchdog.is_some() {
                            watchdog_arms.fetch_add(1, Ordering::Relaxed);
                        }
                        let wait_from = clock.elapsed();
                        let wait_start = if collect { clock.now_us() } else { 0 };
                        let outcome = wait_for_rows(
                            rows_done,
                            epoch,
                            active,
                            band.start..wait_hi + 1,
                            watchdog,
                            clock,
                            wait_from,
                        );
                        if collect {
                            wlog.record(
                                SpanKind::Wait,
                                wait_start,
                                clock.now_us(),
                                band.start as u32,
                                (wait_hi + 1 - band.start) as u32,
                            );
                        }
                        match outcome {
                            WaitOutcome::Ready => {}
                            WaitOutcome::Stalled { row, waited_ms } => {
                                stalled.lock().get_or_insert((row, waited_ms));
                                return; // leave warp_done[p] false for repair
                            }
                        }
                        // The band warp only reads rows [start, end], all of
                        // which are now quiescent.
                        let warp_start = if collect { clock.now_us() } else { 0 };
                        let warp = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(fp) = fault {
                                fp.on_warp(p);
                            }
                            let mut tracer = NullTracer;
                            warp_row_band(
                                shared,
                                fact,
                                shared_out,
                                (band.start, band.end),
                                &mut tracer,
                            );
                        }));
                        if collect {
                            wlog.record(
                                SpanKind::Warp,
                                warp_start,
                                clock.now_us(),
                                band.start as u32,
                                (band.end - band.start) as u32,
                            );
                        }
                        match warp {
                            Ok(()) => warp_done[p].store(epoch, Ordering::Release),
                            Err(payload) => {
                                panics.lock().push((p, panic_message(payload.as_ref())));
                            }
                        }
                    });
                }
            })
            .expect("worker panics are contained via catch_unwind");
        }
        // The phases overlap (that is the point); report the frame total as
        // composite time and leave warp at zero unless callers time phases
        // via the capture path.
        stats.composite_secs = us_to_secs(clock.now_us());
        stats.steals = steals.load(Ordering::Relaxed);
        stats.composited_pixels = composited.load(Ordering::Relaxed);

        // Resolve the frame: repair, typed error, or clean completion. The
        // scope join ordered every worker's effects before this point.
        let worker_panics = std::mem::take(&mut *panics.lock());
        let first_stall = stalled.lock().take();
        let lost: Vec<usize> = region
            .clone()
            .filter(|&y| rows_done[y].load(Ordering::Acquire) < epoch)
            .collect();

        if !worker_panics.is_empty() {
            stats.worker_panics = worker_panics.len() as u64;
            if !self.cfg.recover_panics {
                let (worker, message) = worker_panics[0].clone();
                return Err(Error::WorkerPanicked { worker, message });
            }
            stats.degraded = true;
            stats.repaired_rows = lost.len() as u64;
            let repair_start = clock.now_us();
            // Serial repair: re-composite each lost row from scratch (same
            // ascending-slice order as the worker loop, so the repaired row
            // is bit-identical), then re-warp every band whose warp did not
            // complete, replicating the exact band-extension rule of the
            // parallel path. The band warp writes each owned final pixel
            // deterministically, so any partial writes from a failed
            // attempt are overwritten.
            let repair_inter = SharedIntermediate::new(inter);
            for &y in &lost {
                recomposite_row(rle, &fact, &repair_inter, y, &opts);
            }
            let repaired_out = SharedFinal::new(&mut out);
            rewarp_unfinished_bands(
                &repair_inter,
                &fact,
                &repaired_out,
                &partitions,
                &region,
                warp_done,
                epoch,
            );
            if collect {
                driver.record(
                    SpanKind::Repair,
                    repair_start,
                    clock.now_us(),
                    lost.len() as u32,
                    stats.worker_panics as u32,
                );
            }
        } else if first_stall.is_some() || !lost.is_empty() {
            // Lost work without a panic: nothing trustworthy to repair from
            // (a queue was tampered with or a scheduler invariant broke) —
            // surface the first missing row.
            let (row, waited_ms) =
                first_stall.unwrap_or_else(|| (lost[0], clock.elapsed().as_millis() as u64));
            let holder = match row_claim[row].load(Ordering::Relaxed) {
                UNCLAIMED => None,
                w => Some(w),
            };
            return Err(Error::Stalled {
                row,
                holder,
                waited_ms,
            });
        }

        if profiling && !stats.degraded {
            self.profile = new_profile
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            self.profile_valid = true;
            self.frames_since_profile = 0;
            self.last_profile_model = Some(view.model);
        } else if profiling {
            // A degraded profiling frame cannot harvest its counters — the
            // panicked worker's contributions are partial. Keep the old
            // profile (if any) and try again next frame.
            stats.profiled = false;
        } else {
            self.frames_since_profile += 1;
        }
        let frames_since_profile = self.frames_since_profile;
        self.last_telemetry = Some(telem::finish_frame(
            "new",
            &clock,
            driver,
            logs,
            &stats,
            |m| {
                m.inc("watchdog.arms", watchdog_arms.load(Ordering::Relaxed));
                m.set_gauge("profile.frames_since", frames_since_profile as f64);
                m.set_gauge("core.pinned", pins.pinned() as f64);
                m.set_gauge("core.numa_node", pins.max_numa_node() as f64);
            },
        ));
        Ok((out, stats))
    }
}

/// Composites every slice of the factorization through one chunk of
/// scanlines, zeroing each row immediately before its first slice.
///
/// The first-touch zeroing replaces the driver's whole-image clear: the
/// worker that will stream over a band every slice is also the thread that
/// writes its pages first. On a NUMA machine that places each band on the
/// compositing processor's node — the groundwork for the paper's §5
/// observation that the intermediate image dominates the per-processor
/// working set, so its capacity misses (and on ccNUMA, its page placement)
/// decide the compositing phase's memory time.
pub(crate) fn composite_chunk_rows(
    rle: AxisSrc<'_>,
    fact: &Factorization,
    shared: &SharedIntermediate<'_>,
    rows: Range<usize>,
    opts: &CompositeOpts,
    profiling: bool,
    new_profile: &[AtomicU64],
) -> u64 {
    for y in rows.clone() {
        // SAFETY: row ownership moves only through the queues; each row is
        // in exactly one chunk, so this worker has exclusive access.
        unsafe { shared.clear_row(y) };
    }
    let mut pixels = 0u64;
    for m in 0..fact.slice_count() {
        let k = fact.slice_for_step(m);
        for y in rows.clone() {
            // SAFETY: as above — exclusive row access via chunk ownership.
            let mut row = unsafe { shared.row_view(y) };
            if profiling {
                let st =
                    composite_scanline_slice_src(rle, fact, &mut row, k, opts, &mut NullTracer);
                pixels += st.composited;
                new_profile[y].fetch_add(st.work, Ordering::Relaxed);
            } else {
                pixels += composite_scanline_slice_untraced_src(rle, fact, &mut row, k, opts);
            }
        }
    }
    pixels
}

/// Applies the warp's band-extension rule: the band that starts at the
/// composited region's first row also owns the final pixels just under it,
/// which bilinearly read one row below the region.
pub(crate) fn extend_band(band: &mut Range<usize>, region_start: usize) {
    if band.start == region_start {
        band.start = band.start.saturating_sub(1);
    }
}

/// Serially re-composites one lost row from scratch, visiting slices in the
/// same ascending order as the worker loop so the repair is bit-identical.
pub(crate) fn recomposite_row(
    rle: AxisSrc<'_>,
    fact: &Factorization,
    shared: &SharedIntermediate<'_>,
    y: usize,
    opts: &CompositeOpts,
) {
    // SAFETY: repair runs serially on the resolving thread after every
    // worker has retired from the frame.
    unsafe { shared.clear_row(y) };
    let mut row = unsafe { shared.row_view(y) };
    for m in 0..fact.slice_count() {
        let k = fact.slice_for_step(m);
        composite_scanline_slice_src(rle, fact, &mut row, k, opts, &mut NullTracer);
    }
}

/// Serially re-warps every band whose warp never completed for `epoch`,
/// replicating the parallel path's band-extension rule.
pub(crate) fn rewarp_unfinished_bands(
    inter: &SharedIntermediate<'_>,
    fact: &Factorization,
    out: &SharedFinal<'_>,
    partitions: &[Range<usize>],
    region: &Range<usize>,
    warp_done: &[AtomicU64],
    epoch: u64,
) {
    for (p, part) in partitions.iter().enumerate() {
        if warp_done[p].load(Ordering::Acquire) >= epoch {
            continue;
        }
        let mut band = part.clone();
        if band.is_empty() {
            continue;
        }
        extend_band(&mut band, region.start);
        warp_row_band(inter, fact, out, (band.start, band.end), &mut NullTracer);
    }
}

/// Spins until every row in `rows` is composited for frame `epoch`, proving
/// a stall instead of waiting forever: a row still incomplete after the last
/// compositor retires can never complete (the Release RMW chain on `active`
/// publishes every completed row flag), and `watchdog` bounds the wait in
/// all other cases. The watchdog deadline is measured from `wait_from` (this
/// wait's start), not from the clock origin — under the pipeline's two-frame
/// window a frame-N waiter may legitimately begin long after the shared
/// animation clock started.
pub(crate) fn wait_for_rows(
    rows_done: &[AtomicU64],
    epoch: u64,
    active: &AtomicUsize,
    rows: Range<usize>,
    watchdog: Option<Duration>,
    clock: &FrameClock,
    wait_from: Duration,
) -> WaitOutcome {
    let waited = |clock: &FrameClock| clock.elapsed().saturating_sub(wait_from);
    for y in rows {
        let mut spins = 0u32;
        loop {
            if rows_done[y].load(Ordering::Acquire) >= epoch {
                break;
            }
            if active.load(Ordering::Acquire) == 0 {
                // Re-check after synchronizing with the final retirement.
                if rows_done[y].load(Ordering::Acquire) >= epoch {
                    break;
                }
                return WaitOutcome::Stalled {
                    row: y,
                    waited_ms: waited(clock).as_millis() as u64,
                };
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                if let Some(limit) = watchdog {
                    if waited(clock) >= limit {
                        return WaitOutcome::Stalled {
                            row: y,
                            waited_ms: waited(clock).as_millis() as u64,
                        };
                    }
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
    WaitOutcome::Ready
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_render::SerialRenderer;
    use swr_volume::{classify, Phantom};

    fn scene() -> (EncodedVolume, ViewSpec) {
        let vol = Phantom::MriBrain.generate([24, 24, 16], 11);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        (
            EncodedVolume::encode(&c),
            ViewSpec::new([24, 24, 16]).rotate_y(0.5).rotate_x(0.2),
        )
    }

    #[test]
    fn matches_serial_bit_exactly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for procs in [1, 2, 3, 5] {
            let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(procs));
            // First frame profiles and uses equal partitions; second frame
            // uses the profile. Both must match the serial image.
            assert_eq!(r.render(&enc, &view), serial, "frame 1, procs = {procs}");
            assert_eq!(r.render(&enc, &view), serial, "frame 2, procs = {procs}");
        }
    }

    #[test]
    fn profile_is_collected_then_reused() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig {
            profile_every: 3,
            ..ParallelConfig::with_procs(2)
        });
        let (_, s1) = r.render_with_stats(&enc, &view);
        assert!(s1.profiled, "first frame must profile");
        assert!(r.profile().is_some());
        let (_, s2) = r.render_with_stats(&enc, &view);
        assert!(!s2.profiled);
        let (_, s3) = r.render_with_stats(&enc, &view);
        assert!(!s3.profiled);
        let (_, s4) = r.render_with_stats(&enc, &view);
        assert!(s4.profiled, "k = 3 frames elapsed");
    }

    #[test]
    fn angle_policy_reprofiles_every_15_degrees() {
        let (enc, _) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig {
            profile_every_degrees: Some(15.0),
            ..ParallelConfig::with_procs(2)
        });
        // 3 degrees per frame: profiled frames at 0°, 15°, 30°, ...
        let mut profiled_frames = Vec::new();
        for frame in 0..12 {
            let view = ViewSpec::new([24, 24, 16]).rotate_y((frame as f64 * 3.0).to_radians());
            let (_, stats) = r.render_with_stats(&enc, &view);
            if stats.profiled {
                profiled_frames.push(frame);
            }
        }
        assert_eq!(
            profiled_frames,
            vec![0, 5, 10],
            "profile every 15° at 3°/frame"
        );
    }

    #[test]
    fn profile_concentrates_on_occupied_rows() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(2));
        r.render(&enc, &view);
        let profile = r.profile().expect("profiled on first frame");
        let fact = Factorization::from_view(&view);
        assert_eq!(profile.len(), fact.inter_h);
        assert!(profile[0] == 0, "clipped empty rows are never composited");
        assert!(profile.iter().sum::<u64>() > 0);
    }

    #[test]
    fn ablations_still_render_correctly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for (clip, prof, steal) in [
            (false, true, true),
            (true, false, true),
            (false, false, false),
        ] {
            let cfg = ParallelConfig {
                empty_region_clip: clip,
                profiled_partition: prof,
                steal,
                ..ParallelConfig::with_procs(3)
            };
            let mut r = NewParallelRenderer::new(cfg);
            assert_eq!(
                r.render(&enc, &view),
                serial,
                "clip={clip} prof={prof} steal={steal}"
            );
            assert_eq!(r.render(&enc, &view), serial);
        }
    }

    #[test]
    fn empty_volume_renders_black() {
        let c = classify(
            &swr_volume::Volume::zeros([16, 16, 16]),
            &Phantom::MriBrain.default_transfer(),
        );
        let enc = EncodedVolume::encode(&c);
        let view = ViewSpec::new([16, 16, 16]).rotate_y(0.3);
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(2));
        let img = r.render(&enc, &view);
        assert_eq!(img.mean_luma(), 0.0);
        // Serial output for the empty volume is all-zero too.
        assert_eq!(img, SerialRenderer::new().render(&enc, &view));
    }

    #[test]
    fn view_changes_keep_rendering_consistent() {
        let (enc, _) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        for deg in [0.0f64, 20.0, 95.0, 180.0, 275.0] {
            let view = ViewSpec::new([24, 24, 16]).rotate_y(deg.to_radians());
            let img = r.render(&enc, &view);
            assert_eq!(
                img,
                SerialRenderer::new().render(&enc, &view),
                "angle {deg}"
            );
        }
    }

    #[test]
    fn invalid_config_is_typed_not_panicking() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(0));
        let e = r.try_render(&enc, &view).expect_err("nprocs = 0");
        assert!(matches!(e, Error::InvalidConfig { .. }), "{e}");
        assert!(e.to_string().contains("nprocs"), "{e}");
    }

    #[test]
    fn contained_worker_panic_repairs_bit_identically() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        r.fault = Some(FaultPlan::new(1).panic_at(0));
        let (img, stats) = r.try_render_with_stats(&enc, &view).expect("recovered");
        assert_eq!(img, serial, "repaired frame must match serial bit-exactly");
        assert_eq!(stats.worker_panics, 1);
        assert!(stats.degraded);
    }

    #[test]
    fn telemetry_labels_profiling_waits_and_staleness() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        r.render(&enc, &view); // frame 1: profiles
        let t1 = r.last_telemetry.clone().expect("telemetry after frame 1");
        r.render(&enc, &view); // frame 2: reuses the profile
        let t2 = r.last_telemetry.as_ref().expect("telemetry after frame 2");
        assert_eq!(t2.label, "new");
        assert_eq!(t2.workers.len(), 4, "driver lane + 3 workers");
        assert_eq!(t2.metrics.gauge("profile.frames_since"), Some(1.0));
        if cfg!(feature = "telemetry") {
            // Frame 1 composites under the profiling label, frame 2 plain.
            assert!(t1.span_count(SpanKind::Profile) > 0);
            assert_eq!(t1.span_count(SpanKind::Composite), 0);
            assert!(t2.span_count(SpanKind::Composite) > 0);
            assert_eq!(t2.span_count(SpanKind::Profile), 0);
            // Every worker with a nonempty band records exactly one wait on
            // the completion flags, and the default watchdog armed each one.
            let waits = t2.span_count(SpanKind::Wait) as u64;
            assert!(waits > 0);
            assert_eq!(t2.metrics.counter("watchdog.arms"), waits);
            // No global barrier in the new algorithm.
            assert_eq!(t2.span_count(SpanKind::Barrier), 0);
        }
    }

    #[test]
    fn panic_repair_is_visible_in_telemetry() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        r.fault = Some(FaultPlan::new(1).panic_at(0));
        let (_, stats) = r.try_render_with_stats(&enc, &view).expect("recovered");
        let t = r
            .last_telemetry
            .as_ref()
            .expect("telemetry survives repair");
        assert_eq!(
            t.metrics.counter("stats.worker_panics"),
            stats.worker_panics
        );
        assert_eq!(
            t.metrics.counter("stats.repaired_rows"),
            stats.repaired_rows
        );
        assert_eq!(t.metrics.gauge("stats.degraded"), Some(1.0));
        if cfg!(feature = "telemetry") {
            assert_eq!(t.workers[0].kind_count(SpanKind::Repair), 1);
        }
    }
}
