//! The *new* parallel shear-warp renderer (§4), native threaded execution.
//!
//! Frame structure:
//!
//! 1. **Partition** — from the last collected per-scanline work profile,
//!    compute contiguous, predictively balanced partitions of the occupied
//!    band of the intermediate image (cumulative profile via prefix sum +
//!    equal-area boundaries, §4.3). Without a valid profile (first frame, or
//!    the intermediate image changed size) equal-count partitions are used.
//! 2. **Composite** — each processor works through its own partition from
//!    the front, in chunks (the steal unit); idle processors steal chunks
//!    from the *back* of the fullest victim (§4.4). Every `k` frames the
//!    compositor also collects the per-scanline work profile (§4.2),
//!    including its modeled instruction overhead.
//! 3. **Warp, without a barrier** (§4.5) — each processor warps exactly the
//!    final-image pixels owned by its partition band. Readiness is tracked
//!    with per-scanline completion flags, so a processor starts warping as
//!    soon as the rows its band reads (its own plus the first row of the
//!    next band) are composited — the global barrier is gone.

use crate::partition::{balanced_contiguous, equal_contiguous, partition_chunks};
use crate::prefix::parallel_prefix_sum;
use crate::{ParallelConfig, RenderStats};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use swr_geom::{Factorization, ViewSpec};
use swr_render::{
    composite::occupied_y_bounds, composite_scanline_slice, warp_row_band, CompositeOpts,
    FinalImage, IntermediateImage, NullTracer, SharedFinal, SharedIntermediate,
};
use swr_volume::EncodedVolume;

/// The new parallel renderer. Holds the work profile across frames, as an
/// animation loop would.
#[derive(Debug, Default)]
pub struct NewParallelRenderer {
    /// Configuration (processor count, steal chunk, profile period).
    pub cfg: ParallelConfig,
    /// Compositing options (early termination, depth cueing).
    pub composite_opts: CompositeOpts,
    inter: Option<IntermediateImage>,
    profile: Vec<u64>,
    profile_valid: bool,
    frames_since_profile: usize,
    /// Model matrix of the last profiled frame (for the angle-based
    /// staleness policy).
    last_profile_model: Option<swr_geom::Mat4>,
}

impl NewParallelRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        NewParallelRenderer { cfg, ..Default::default() }
    }

    /// The per-scanline profile from the last profiled frame, if any.
    pub fn profile(&self) -> Option<&[u64]> {
        self.profile_valid.then_some(self.profile.as_slice())
    }

    /// Forces the next frame to collect a fresh profile.
    pub fn invalidate_profile(&mut self) {
        self.profile_valid = false;
    }

    /// Renders one frame.
    pub fn render(&mut self, enc: &EncodedVolume, view: &ViewSpec) -> FinalImage {
        self.render_with_stats(enc, view).0
    }

    /// Renders one frame, returning execution statistics.
    pub fn render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> (FinalImage, RenderStats) {
        let fact = Factorization::from_view(view);
        let rle = enc.for_axis(fact.principal);
        let nprocs = self.cfg.nprocs.max(1);
        let h = fact.inter_h;

        let inter = match &mut self.inter {
            Some(img) if img.width() == fact.inter_w && img.height() == h => {
                img.clear();
                self.inter.as_mut().expect("checked above")
            }
            slot => {
                *slot = Some(IntermediateImage::new(fact.inter_w, h));
                slot.as_mut().expect("just set")
            }
        };
        let mut out = FinalImage::new(fact.final_w, fact.final_h);
        let mut stats = RenderStats::default();

        // §4.2: composite only the occupied band of the intermediate image.
        let region: Range<usize> = if self.cfg.empty_region_clip {
            match occupied_y_bounds(rle, &fact) {
                Some((lo, hi)) => lo..hi + 1,
                None => return (out, stats), // empty volume: nothing to draw
            }
        } else {
            0..h
        };

        // Profile staleness policy: refresh on startup, whenever the
        // intermediate image geometry changed, and then either every k
        // frames or — the paper's own choice — once the viewpoint has
        // rotated far enough since the last profiled frame (§4.2).
        let have_profile = self.profile_valid && self.profile.len() == h;
        let stale = match (self.cfg.profile_every_degrees, &self.last_profile_model) {
            (Some(deg), Some(last)) => {
                last.rotation_angle_to(&view.model).to_degrees() >= deg
            }
            (Some(_), None) => true,
            (None, _) => self.frames_since_profile + 1 >= self.cfg.profile_every,
        };
        let profiling = self.cfg.profiled_partition && (!have_profile || stale);
        stats.profiled = profiling;

        // §4.3: contiguous, predictively balanced partitions.
        let t0 = std::time::Instant::now();
        let partitions: Vec<Range<usize>> = if self.cfg.profiled_partition && have_profile {
            let cum_profile: Vec<u64> = self.profile[region.clone()].to_vec();
            // The cumulative curve itself is computed with the parallel
            // prefix (its result equals the serial scan; balanced_contiguous
            // re-derives boundaries from the same values).
            let _cum = parallel_prefix_sum(&cum_profile, nprocs);
            balanced_contiguous(region.clone(), &cum_profile, nprocs)
        } else {
            equal_contiguous(region.clone(), nprocs)
        };
        let chunk_rows = self.cfg.effective_chunk_rows(region.len().max(1));
        let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
            partition_chunks(&partitions, chunk_rows)
                .into_iter()
                .map(|v| Mutex::new(v.into()))
                .collect();

        // Per-row completion flags; rows outside the composited region are
        // ready immediately.
        let rows_done: Vec<AtomicBool> = (0..h)
            .map(|y| AtomicBool::new(!region.contains(&y)))
            .collect();
        // Profile collection target (relaxed adds; sums are deterministic).
        let new_profile: Vec<AtomicU64> = if profiling {
            (0..h).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };

        let steals = AtomicU64::new(0);
        let composited = AtomicU64::new(0);
        let opts = CompositeOpts { profile: profiling, ..self.composite_opts };
        {
            let shared = SharedIntermediate::new(inter);
            let shared_out = SharedFinal::new(&mut out);
            let fact = &fact;
            let partitions = &partitions;
            let region = &region;
            crossbeam::scope(|s| {
                #[allow(clippy::needless_range_loop)]
                for p in 0..nprocs {
                    let queues = &queues;
                    let rows_done = &rows_done;
                    let new_profile = &new_profile;
                    let steals = &steals;
                    let composited = &composited;
                    let shared = &shared;
                    let shared_out = &shared_out;
                    let steal = self.cfg.steal;
                    s.spawn(move |_| {
                        let mut tracer = NullTracer;
                        let mut local_pixels = 0u64;
                        while let Some(rows) =
                            crate::old_renderer::pop_or_steal(p, queues, steal, steals)
                        {
                            for m in 0..fact.slice_count() {
                                let k = fact.slice_for_step(m);
                                for y in rows.clone() {
                                    // SAFETY: row ownership moves only
                                    // through the queues; each row is in
                                    // exactly one chunk.
                                    let mut row = unsafe { shared.row_view(y) };
                                    let st = composite_scanline_slice(
                                        rle, fact, &mut row, k, &opts, &mut tracer,
                                    );
                                    local_pixels += st.composited;
                                    if profiling {
                                        new_profile[y]
                                            .fetch_add(st.work, Ordering::Relaxed);
                                    }
                                }
                            }
                            for y in rows {
                                rows_done[y].store(true, Ordering::Release);
                            }
                        }
                        composited.fetch_add(local_pixels, Ordering::Relaxed);

                        // §4.5: warp the own band as soon as the rows it
                        // reads are composited — no global barrier. The first
                        // band extends one row below the clipped region:
                        // final pixels just under it bilinearly read the
                        // region's first composited row.
                        let mut band = partitions[p].clone();
                        if band.is_empty() {
                            return;
                        }
                        if band.start == region.start {
                            band.start = band.start.saturating_sub(1);
                        }
                        let wait_hi = band.end.min(h - 1);
                        #[allow(clippy::needless_range_loop)]
                        for y in band.start..=wait_hi {
                            while !rows_done[y].load(Ordering::Acquire) {
                                std::hint::spin_loop();
                                std::thread::yield_now();
                            }
                        }
                        // The band warp only reads rows [start, end], all of
                        // which are now quiescent.
                        warp_row_band(
                            shared,
                            fact,
                            shared_out,
                            (band.start, band.end),
                            &mut tracer,
                        );
                        let _ = region;
                    });
                }
            })
            .expect("render workers must not panic");
        }
        let total = t0.elapsed().as_secs_f64();
        // The phases overlap (that is the point); report the frame total as
        // composite time and leave warp at zero unless callers time phases
        // via the capture path.
        stats.composite_secs = total;
        stats.steals = steals.load(Ordering::Relaxed);
        stats.composited_pixels = composited.load(Ordering::Relaxed);

        if profiling {
            self.profile = new_profile.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            self.profile_valid = true;
            self.frames_since_profile = 0;
            self.last_profile_model = Some(view.model);
        } else {
            self.frames_since_profile += 1;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_render::SerialRenderer;
    use swr_volume::{classify, Phantom};

    fn scene() -> (EncodedVolume, ViewSpec) {
        let vol = Phantom::MriBrain.generate([24, 24, 16], 11);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        (EncodedVolume::encode(&c), ViewSpec::new([24, 24, 16]).rotate_y(0.5).rotate_x(0.2))
    }

    #[test]
    fn matches_serial_bit_exactly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for procs in [1, 2, 3, 5] {
            let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(procs));
            // First frame profiles and uses equal partitions; second frame
            // uses the profile. Both must match the serial image.
            assert_eq!(r.render(&enc, &view), serial, "frame 1, procs = {procs}");
            assert_eq!(r.render(&enc, &view), serial, "frame 2, procs = {procs}");
        }
    }

    #[test]
    fn profile_is_collected_then_reused() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig {
            profile_every: 3,
            ..ParallelConfig::with_procs(2)
        });
        let (_, s1) = r.render_with_stats(&enc, &view);
        assert!(s1.profiled, "first frame must profile");
        assert!(r.profile().is_some());
        let (_, s2) = r.render_with_stats(&enc, &view);
        assert!(!s2.profiled);
        let (_, s3) = r.render_with_stats(&enc, &view);
        assert!(!s3.profiled);
        let (_, s4) = r.render_with_stats(&enc, &view);
        assert!(s4.profiled, "k = 3 frames elapsed");
    }

    #[test]
    fn angle_policy_reprofiles_every_15_degrees() {
        let (enc, _) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig {
            profile_every_degrees: Some(15.0),
            ..ParallelConfig::with_procs(2)
        });
        // 3 degrees per frame: profiled frames at 0°, 15°, 30°, ...
        let mut profiled_frames = Vec::new();
        for frame in 0..12 {
            let view = ViewSpec::new([24, 24, 16])
                .rotate_y((frame as f64 * 3.0).to_radians());
            let (_, stats) = r.render_with_stats(&enc, &view);
            if stats.profiled {
                profiled_frames.push(frame);
            }
        }
        assert_eq!(profiled_frames, vec![0, 5, 10], "profile every 15° at 3°/frame");
    }

    #[test]
    fn profile_concentrates_on_occupied_rows() {
        let (enc, view) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(2));
        r.render(&enc, &view);
        let profile = r.profile().expect("profiled on first frame");
        let fact = Factorization::from_view(&view);
        assert_eq!(profile.len(), fact.inter_h);
        assert!(profile[0] == 0, "clipped empty rows are never composited");
        assert!(profile.iter().sum::<u64>() > 0);
    }

    #[test]
    fn ablations_still_render_correctly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for (clip, prof, steal) in
            [(false, true, true), (true, false, true), (false, false, false)]
        {
            let cfg = ParallelConfig {
                empty_region_clip: clip,
                profiled_partition: prof,
                steal,
                ..ParallelConfig::with_procs(3)
            };
            let mut r = NewParallelRenderer::new(cfg);
            assert_eq!(r.render(&enc, &view), serial, "clip={clip} prof={prof} steal={steal}");
            assert_eq!(r.render(&enc, &view), serial);
        }
    }

    #[test]
    fn empty_volume_renders_black() {
        let c = classify(
            &swr_volume::Volume::zeros([16, 16, 16]),
            &Phantom::MriBrain.default_transfer(),
        );
        let enc = EncodedVolume::encode(&c);
        let view = ViewSpec::new([16, 16, 16]).rotate_y(0.3);
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(2));
        let img = r.render(&enc, &view);
        assert_eq!(img.mean_luma(), 0.0);
        // Serial output for the empty volume is all-zero too.
        assert_eq!(img, SerialRenderer::new().render(&enc, &view));
    }

    #[test]
    fn view_changes_keep_rendering_consistent() {
        let (enc, _) = scene();
        let mut r = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        for deg in [0.0f64, 20.0, 95.0, 180.0, 275.0] {
            let view = ViewSpec::new([24, 24, 16]).rotate_y(deg.to_radians());
            let img = r.render(&enc, &view);
            assert_eq!(
                img,
                SerialRenderer::new().render(&enc, &view),
                "angle {deg}"
            );
        }
    }
}
