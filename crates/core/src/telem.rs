//! Shared telemetry plumbing for the parallel renderers.
//!
//! Both renderers follow the same recipe: one [`FrameClock`] per frame (the
//! single time source for stats seconds, watchdog deadlines, and spans), one
//! bounded [`WorkerLog`] per worker handed to its thread through a mutex
//! that is locked exactly twice per frame (checkout at spawn, return at
//! retire — the recording itself is lock- and allocation-free), and a driver
//! lane for partitioning/repair events. Recording sites are guarded by
//! [`collect()`], a `cfg!`-constant, so building without the `telemetry`
//! feature compiles every site away.

use crate::RenderStats;
use swr_telemetry::{FrameClock, FrameTelemetry, MetricsRegistry, TimeUnit, WorkerLog};

/// Span-buffer capacity per worker lane per frame. At chunk/tile/band task
/// granularity a frame records a few spans per task; overflow is counted,
/// never grown.
pub(crate) const SPAN_CAP: usize = 2048;

/// Whether span recording is compiled in. A `const`-foldable guard: with the
/// `telemetry` feature off every `if collect() { ... }` block is dead code.
#[inline(always)]
pub(crate) fn collect() -> bool {
    cfg!(feature = "telemetry")
}

/// Per-worker logs parked in mutexes so scoped threads can check them out.
/// Capacity is zero when recording is off, so the buffers cost nothing.
pub(crate) fn worker_logs(nprocs: usize) -> Vec<parking_lot::Mutex<WorkerLog>> {
    let cap = if collect() { SPAN_CAP } else { 0 };
    (0..nprocs)
        .map(|p| parking_lot::Mutex::new(WorkerLog::new(p, cap)))
        .collect()
}

/// The driver lane's log (partitioning, repair, frame bookkeeping).
pub(crate) fn driver_log() -> WorkerLog {
    WorkerLog::new(WorkerLog::DRIVER, if collect() { 256 } else { 0 })
}

/// Assembles the frame's telemetry: driver lane first, then the worker
/// lanes, with the stats mirrored into the metrics registry and `extra`
/// applied before span histograms are derived.
pub(crate) fn finish_frame(
    label: &str,
    clock: &FrameClock,
    driver: WorkerLog,
    workers: Vec<parking_lot::Mutex<WorkerLog>>,
    stats: &RenderStats,
    extra: impl FnOnce(&mut MetricsRegistry),
) -> FrameTelemetry {
    let mut t = FrameTelemetry::new(TimeUnit::Micros, label);
    t.workers.push(driver);
    t.workers
        .extend(workers.into_iter().map(|m| m.into_inner()));
    stats.fill_metrics(&mut t.metrics);
    extra(&mut t.metrics);
    t.finish(clock.now_us());
    t
}
