//! Deterministic fault injection for the parallel renderers.
//!
//! A [`FaultPlan`] attached to a renderer (`renderer.fault = Some(plan)`)
//! injects failures at precisely reproducible points:
//!
//! * **worker panics** — the plan counts compositing tasks (chunk pops)
//!   globally across workers with a sequentially consistent counter and
//!   panics inside the worker that claims the Nth task;
//! * **corrupted / zeroed work profiles** — the per-scanline profile driving
//!   the balanced partition (§4.3) is scrambled with a seeded generator or
//!   zeroed before partitioning, exercising the degenerate-partition paths;
//! * **truncated steal queues** — chunks are dropped from the back of a
//!   worker's queue before rendering starts, so the rows they cover are
//!   never composited and the scheduler watchdog must detect the loss;
//! * **delivery-stage panics** — the consumer's sink panics as the Nth
//!   completed frame is handed over, exercising the pipeline's condvar-ring
//!   shutdown guard and (in `swr-serve`) the response path, which must
//!   contain the unwind without deadlocking the worker pool.
//!
//! Every injection is deterministic given the plan (same seed, same task
//! index), which is what lets the test suite assert that each fault yields
//! either a bit-identical fallback image or a typed [`swr_error::Error`] —
//! never a hang or a torn image.

use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic schedule of faults to inject into one or more frames.
///
/// The plan is shared immutably with every worker; the only mutable state is
/// the global task counter, so a plan can be reused across frames by calling
/// [`FaultPlan::reset`] between them.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Seed for the profile scrambler.
    pub seed: u64,
    /// Panic inside the worker that claims this (0-based) compositing task.
    pub panic_at_task: Option<u64>,
    /// Scramble the work profile with seeded pseudo-random values before
    /// partitioning (models a stale or corrupted profile buffer).
    pub corrupt_profile: bool,
    /// Zero the work profile before partitioning (models a lost profile;
    /// the partitioner must fall back to equal-count partitions).
    pub zero_profile: bool,
    /// Drop this many chunks from the back of worker 0's queue before the
    /// frame starts (models lost work the watchdog must detect).
    pub truncate_queue: Option<usize>,
    /// Panic inside the worker performing this (0-based) warp-phase band.
    /// Counted globally across workers like `panic_at_task`, so the fault
    /// suite can hit the warp of either in-flight frame of the pipeline.
    pub panic_warp_at: Option<u64>,
    /// Panic in the delivery stage as this (0-based) completed frame is
    /// handed to the consumer's sink. This exercises the paths *after*
    /// rendering: the pipeline's condvar ring shutdown guard and a
    /// service's response/serialization path.
    pub panic_sink_at: Option<u64>,
    tasks_seen: AtomicU64,
    warps_seen: AtomicU64,
    sinks_seen: AtomicU64,
}

/// One step of the splitmix64 generator — small, seedable, and good enough
/// to scramble a profile without pulling in an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and no faults armed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Arms a worker panic at the given 0-based global task index.
    pub fn panic_at(mut self, task: u64) -> Self {
        self.panic_at_task = Some(task);
        self
    }

    /// Arms profile scrambling before partitioning.
    pub fn corrupting_profile(mut self) -> Self {
        self.corrupt_profile = true;
        self
    }

    /// Arms profile zeroing before partitioning.
    pub fn zeroing_profile(mut self) -> Self {
        self.zero_profile = true;
        self
    }

    /// Arms dropping `chunks` entries from the back of worker 0's queue.
    pub fn truncating_queue(mut self, chunks: usize) -> Self {
        self.truncate_queue = Some(chunks);
        self
    }

    /// Arms a worker panic at the given 0-based global warp-band index.
    pub fn panic_in_warp_at(mut self, band: u64) -> Self {
        self.panic_warp_at = Some(band);
        self
    }

    /// Arms a delivery-stage panic at the given 0-based delivered frame.
    pub fn panic_in_sink_at(mut self, frame: u64) -> Self {
        self.panic_sink_at = Some(frame);
        self
    }

    /// Called by a worker as it claims a compositing task. Panics with a
    /// recognizable message when the armed task index is reached.
    pub fn on_task(&self, worker: usize) {
        let n = self.tasks_seen.fetch_add(1, Ordering::SeqCst);
        if self.panic_at_task == Some(n) {
            panic!("injected fault: worker {worker} panic at task {n}");
        }
    }

    /// Number of tasks observed so far (diagnostic; also tells tests how
    /// many injection points one frame offers).
    pub fn tasks_seen(&self) -> u64 {
        self.tasks_seen.load(Ordering::SeqCst)
    }

    /// Called by a worker as it begins warping its band. Panics with a
    /// recognizable message when the armed band index is reached.
    pub fn on_warp(&self, worker: usize) {
        let n = self.warps_seen.fetch_add(1, Ordering::SeqCst);
        if self.panic_warp_at == Some(n) {
            panic!("injected fault: worker {worker} panic in warp band {n}");
        }
    }

    /// Number of warp bands observed so far.
    pub fn warps_seen(&self) -> u64 {
        self.warps_seen.load(Ordering::SeqCst)
    }

    /// Called by the delivery stage as a completed frame reaches the sink.
    /// Panics with a recognizable message when the armed frame is reached.
    pub fn on_sink(&self) {
        let n = self.sinks_seen.fetch_add(1, Ordering::SeqCst);
        if self.panic_sink_at == Some(n) {
            panic!("injected fault: sink panic delivering frame {n}");
        }
    }

    /// Number of delivered frames observed so far.
    pub fn sinks_seen(&self) -> u64 {
        self.sinks_seen.load(Ordering::SeqCst)
    }

    /// Whether any fault is armed at all (a disarmed plan only counts).
    pub fn is_armed(&self) -> bool {
        self.panic_at_task.is_some()
            || self.corrupt_profile
            || self.zero_profile
            || self.truncate_queue.is_some()
            || self.panic_warp_at.is_some()
            || self.panic_sink_at.is_some()
    }

    /// Overwrites `profile` with seeded pseudo-random values. Values are
    /// bounded below 2³² so even pathological profiles cannot overflow the
    /// partitioner's prefix sums.
    pub fn scramble(&self, profile: &mut [u64]) {
        let mut state = self.seed;
        for p in profile {
            *p = splitmix64(&mut state) & 0xFFFF_FFFF;
        }
    }

    /// Rearms the task, warp, and sink counters for the next frame.
    pub fn reset(&self) {
        self.tasks_seen.store(0, Ordering::SeqCst);
        self.warps_seen.store(0, Ordering::SeqCst);
        self.sinks_seen.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_deterministic_per_seed() {
        let mut a = vec![0u64; 32];
        let mut b = vec![0u64; 32];
        FaultPlan::new(7).scramble(&mut a);
        FaultPlan::new(7).scramble(&mut b);
        assert_eq!(a, b);
        FaultPlan::new(8).scramble(&mut b);
        assert_ne!(a, b);
        assert!(a.iter().all(|&v| v < 1 << 32));
    }

    #[test]
    fn on_sink_panics_exactly_once_at_the_armed_frame() {
        let plan = FaultPlan::new(0).panic_in_sink_at(1);
        assert!(plan.is_armed());
        plan.on_sink();
        let err = std::panic::catch_unwind(|| plan.on_sink()).unwrap_err();
        let msg = swr_error::panic_message(err.as_ref());
        assert!(msg.contains("sink panic delivering frame 1"), "{msg}");
        plan.on_sink();
        assert_eq!(plan.sinks_seen(), 3);
        plan.reset();
        assert_eq!(plan.sinks_seen(), 0);
        assert!(!FaultPlan::new(9).is_armed());
    }

    #[test]
    fn on_task_panics_exactly_once_at_the_armed_index() {
        let plan = FaultPlan::new(0).panic_at(2);
        plan.on_task(0);
        plan.on_task(1);
        let err = std::panic::catch_unwind(|| plan.on_task(1)).unwrap_err();
        let msg = swr_error::panic_message(err.as_ref());
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains("task 2"), "{msg}");
        // Counter keeps advancing; later tasks do not re-panic.
        plan.on_task(0);
        assert_eq!(plan.tasks_seen(), 4);
        // Reset rearms the same plan for the next frame.
        plan.reset();
        assert_eq!(plan.tasks_seen(), 0);
    }
}
