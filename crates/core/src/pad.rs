//! Cache-line padding for hot shared state.
//!
//! The paper's §5 analysis attributes part of the old algorithm's poor
//! scaling to false sharing of per-processor data packed into common cache
//! lines. [`CachePadded`] aligns a value to 128 bytes (two 64-byte lines, to
//! also defeat adjacent-line prefetchers), so per-worker steal queues and
//! shared claim counters each own their lines outright.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so neighbouring values in an array never
/// share a cache line.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_values_do_not_share_lines() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let arr: [CachePadded<u64>; 2] = [CachePadded::new(1), CachePadded::new(2)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
