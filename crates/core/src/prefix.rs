//! Prefix sums over scanline work profiles.
//!
//! The new algorithm turns the per-scanline profile into a cumulative cost
//! curve. Doing this serially would serialize partition computation — the
//! paper notes a naive serial assignment computation inflated compositing
//! time by ~50 % — so it uses a **parallel prefix** (§4.3): each processor
//! scans a block, an exclusive scan over the block totals follows, and each
//! block is then offset. The native renderer uses the threaded version; the
//! trace capture models the same structure for the simulator.

/// Serial inclusive prefix sum: `out[i] = v[0] + … + v[i]`.
pub fn prefix_sum(v: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(v.len());
    let mut acc = 0u64;
    for &x in v {
        acc += x;
        out.push(acc);
    }
    out
}

/// Threaded inclusive prefix sum (block scan + block-offset fixup).
///
/// Produces exactly the same result as [`prefix_sum`]; `nthreads` bounds the
/// worker count.
pub fn parallel_prefix_sum(v: &[u64], nthreads: usize) -> Vec<u64> {
    let n = v.len();
    let nthreads = nthreads.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if nthreads == 1 || n < 1024 {
        return prefix_sum(v);
    }
    let block = n.div_ceil(nthreads);
    let mut out = vec![0u64; n];

    // Pass 1: independent block scans.
    let mut block_totals = vec![0u64; nthreads];
    crossbeam::scope(|s| {
        for ((chunk_in, chunk_out), total) in v
            .chunks(block)
            .zip(out.chunks_mut(block))
            .zip(block_totals.iter_mut())
        {
            s.spawn(move |_| {
                let mut acc = 0u64;
                for (o, &x) in chunk_out.iter_mut().zip(chunk_in) {
                    acc += x;
                    *o = acc;
                }
                *total = acc;
            });
        }
    })
    .expect("prefix workers must not panic");

    // Exclusive scan of block totals (tiny, serial).
    let mut offsets = vec![0u64; nthreads];
    let mut acc = 0u64;
    for (o, &t) in offsets.iter_mut().zip(&block_totals) {
        *o = acc;
        acc += t;
    }

    // Pass 2: apply offsets.
    crossbeam::scope(|s| {
        for (chunk_out, &off) in out.chunks_mut(block).zip(&offsets) {
            if off != 0 {
                s.spawn(move |_| {
                    for o in chunk_out {
                        *o += off;
                    }
                });
            }
        }
    })
    .expect("offset workers must not panic");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_prefix_basics() {
        assert_eq!(prefix_sum(&[]), Vec::<u64>::new());
        assert_eq!(prefix_sum(&[5]), vec![5]);
        assert_eq!(prefix_sum(&[1, 2, 3, 4]), vec![1, 3, 6, 10]);
        assert_eq!(prefix_sum(&[0, 0, 7, 0]), vec![0, 0, 7, 7]);
    }

    #[test]
    fn parallel_matches_serial() {
        let v: Vec<u64> = (0..10_000).map(|i| (i * 2654435761u64) % 1000).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            assert_eq!(
                parallel_prefix_sum(&v, threads),
                prefix_sum(&v),
                "t={threads}"
            );
        }
    }

    #[test]
    fn parallel_handles_small_and_awkward_sizes() {
        for n in [0usize, 1, 2, 1023, 1024, 1025, 4097] {
            let v: Vec<u64> = (0..n as u64).collect();
            assert_eq!(parallel_prefix_sum(&v, 8), prefix_sum(&v), "n={n}");
        }
    }

    #[test]
    fn more_threads_than_elements() {
        let v = vec![1u64; 5];
        assert_eq!(parallel_prefix_sum(&v, 64), vec![1, 2, 3, 4, 5]);
    }
}
