//! Trace capture: turning one rendered frame into a [`FrameWorkload`] for
//! the `swr-memsim` multiprocessor models.
//!
//! Compositing tasks are independent (scanline ownership is exclusive, the
//! volume is read-only), so each *chunk atom* — a fixed-size run of
//! intermediate scanlines — is traced once, serially, with the real
//! renderer inner loops and real heap addresses. Per-processor-count
//! workloads are then assembled from the shared traces:
//!
//! * [`CapturedFrame::old_workload`] — atoms dealt round-robin (the old
//!   algorithm's interleaved chunks), barrier, then traced warp-tile tasks.
//! * [`CapturedFrame::new_workload`] — atoms grouped into contiguous
//!   profile-balanced partitions, preceded by parallel-prefix partitioning
//!   tasks and followed by per-band warp tasks whose *dependencies* (not a
//!   barrier) encode the new algorithm's row-readiness protocol.
//!
//! The replay scheduler performs queueing and stealing in virtual time, so
//! the same traces yield different load balance and sharing on different
//! platforms — exactly the experimental setup of the paper.

use crate::partition::{balanced_contiguous, equal_contiguous};
use crate::ParallelConfig;
use std::ops::Range;
use swr_geom::{Factorization, ViewSpec};
use swr_memsim::workload::TaskLabel;
use swr_memsim::{CollectingTracer, FrameWorkload, StealPolicy, TaskSpec, TaskTrace};
use swr_render::{
    composite::occupied_y_bounds, composite_scanline_slice, warp_row_band, warp_tile,
    CompositeOpts, FinalImage, IntermediateImage, SharedFinal, Tile, Tracer, WorkKind,
};
use swr_volume::EncodedVolume;

/// Capture parameters.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// Scanlines per chunk atom (task/steal granularity).
    pub chunk_rows: usize,
    /// Old algorithm's warp tile side.
    pub tile_size: usize,
    /// Enable stealing in the replay.
    pub steal: bool,
    /// Replay cost of a steal (victim queue lock round-trip).
    pub steal_cycles: u64,
    /// Replay cost of popping the own queue.
    pub pop_cycles: u64,
    /// New algorithm: partition by profile (vs. equal scanline counts).
    pub profiled_partition: bool,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            chunk_rows: 4,
            tile_size: 32,
            steal: true,
            steal_cycles: 120,
            pop_cycles: 15,
            profiled_partition: true,
        }
    }
}

impl CaptureConfig {
    /// Derives a capture config from a renderer config.
    pub fn from_parallel(cfg: &ParallelConfig, rows: usize) -> Self {
        CaptureConfig {
            chunk_rows: cfg.effective_chunk_rows(rows),
            tile_size: cfg.tile_size,
            steal: cfg.steal,
            profiled_partition: cfg.profiled_partition,
            ..Default::default()
        }
    }

    fn policy(&self) -> StealPolicy {
        if self.steal {
            StealPolicy::FromBack {
                steal_cycles: self.steal_cycles,
                pop_cycles: self.pop_cycles,
            }
        } else {
            StealPolicy::None
        }
    }
}

/// One frame's captured compositing traces plus everything needed to
/// assemble per-processor-count workloads.
pub struct CapturedFrame {
    fact: Factorization,
    inter: IntermediateImage,
    /// `(rows, trace)` per chunk atom, in scanline order.
    atoms: Vec<(Range<usize>, TaskTrace)>,
    /// The composited scanline range (clipped or full).
    range: Range<usize>,
    /// Measured per-scanline work of this frame (length = intermediate
    /// height) — usable as the *next* frame's prediction profile.
    pub profile: Vec<u64>,
    cfg: CaptureConfig,
    /// Scratch buffers whose addresses appear in traces. They must stay
    /// allocated (a later allocation at a freed address would alias the
    /// traced one), so they are *reused in place* across assemblies — same
    /// address, same size — instead of accumulating one copy per call.
    scratch: TraceScratch,
}

/// Reusable trace scratch. The final-image and cumulative-profile buffers
/// have sizes fixed by the captured factorization, so their slots are filled
/// once and reused forever; only the per-processor totals buffer depends on
/// `nprocs`, and a size change retires the old buffer into `retired` (kept
/// alive, never freed) rather than dropping it. Memory held is therefore
/// bounded by the number of *distinct* processor counts used, not by the
/// number of workloads assembled.
#[derive(Default)]
struct TraceScratch {
    final_img: Option<Box<FinalImage>>,
    cum: Option<Vec<u64>>,
    totals: Option<Vec<u64>>,
    retired: Vec<Box<dyn std::any::Any>>,
}

impl TraceScratch {
    /// Live scratch allocations: filled slots plus retired buffers.
    fn allocations(&self) -> usize {
        usize::from(self.final_img.is_some())
            + usize::from(self.cum.is_some())
            + usize::from(self.totals.is_some())
            + self.retired.len()
    }
}

/// Captures the compositing phase of one frame.
///
/// `clip` enables the new algorithm's empty-region optimization (§4.2);
/// `profile_overhead` additionally traces the profiling instructions (a
/// profiled frame of the new algorithm).
pub fn capture_frame(
    enc: &EncodedVolume,
    view: &ViewSpec,
    cfg: &CaptureConfig,
    clip: bool,
    profile_overhead: bool,
) -> CapturedFrame {
    try_capture_frame(enc, view, cfg, clip, profile_overhead).unwrap_or_else(|e| panic!("{e}"))
}

/// [`capture_frame`] returning a typed error instead of panicking on an
/// invalid view or a degenerate capture configuration.
pub fn try_capture_frame(
    enc: &EncodedVolume,
    view: &ViewSpec,
    cfg: &CaptureConfig,
    clip: bool,
    profile_overhead: bool,
) -> Result<CapturedFrame, crate::Error> {
    view.try_validate()?;
    if cfg.chunk_rows == 0 {
        return Err(crate::Error::InvalidConfig {
            reason: "capture chunk_rows must be >= 1".into(),
        });
    }
    let fact = Factorization::from_view(view);
    let rle = enc.for_axis(fact.principal);
    let h = fact.inter_h;
    let mut inter = IntermediateImage::new(fact.inter_w, h);
    let range = if clip {
        match occupied_y_bounds(rle, &fact) {
            Some((lo, hi)) => lo..hi + 1,
            None => 0..0,
        }
    } else {
        0..h
    };
    let opts = CompositeOpts {
        profile: profile_overhead,
        ..Default::default()
    };
    let mut profile = vec![0u64; h];
    let mut atoms = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let rows = start..(start + cfg.chunk_rows).min(range.end);
        let mut tracer = CollectingTracer::new();
        for m in 0..fact.slice_count() {
            let k = fact.slice_for_step(m);
            for y in rows.clone() {
                let mut row = inter.row_view(y);
                let st = composite_scanline_slice(rle, &fact, &mut row, k, &opts, &mut tracer);
                profile[y] += st.work;
            }
        }
        atoms.push((rows.clone(), tracer.finish()));
        start = rows.end;
    }
    Ok(CapturedFrame {
        fact,
        inter,
        atoms,
        range,
        profile,
        cfg: *cfg,
        scratch: TraceScratch::default(),
    })
}

impl CapturedFrame {
    /// The factorization of the captured frame.
    pub fn factorization(&self) -> &Factorization {
        &self.fact
    }

    /// Number of chunk atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The composited scanline range.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Scratch allocations currently held for trace-address stability.
    /// Repeated workload assembly reuses buffers in place, so this stays
    /// constant unless the processor count changes (which retires one
    /// buffer) — the regression guard against unbounded keepalive growth.
    pub fn scratch_allocations(&self) -> usize {
        self.scratch.allocations()
    }

    /// Takes the final-image scratch (right size guaranteed: the
    /// factorization is fixed for the life of the capture).
    fn take_final_scratch(&mut self) -> Box<FinalImage> {
        self.scratch
            .final_img
            .take()
            .unwrap_or_else(|| Box::new(FinalImage::new(self.fact.final_w, self.fact.final_h)))
    }

    /// Assembles the **old** algorithm's workload for `nprocs` processors:
    /// interleaved compositing chunks (phase 0, stealable), a barrier, then
    /// round-robin warp tiles (phase 1, no stealing).
    pub fn old_workload(&mut self, nprocs: usize) -> FrameWorkload {
        assert!(nprocs > 0);
        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); nprocs];

        for (i, (_, trace)) in self.atoms.iter().enumerate() {
            queues[i % nprocs].push(tasks.len() as u32);
            tasks.push(TaskSpec {
                trace: trace.clone(),
                phase: 0,
                deps: vec![],
                stealable: true,
                label: TaskLabel::Composite,
            });
        }

        // Trace the warp tiles against the composited intermediate image.
        let mut scratch = self.take_final_scratch();
        {
            let shared = SharedFinal::new(&mut scratch);
            let mut i = 0usize;
            for v0 in (0..self.fact.final_h).step_by(self.cfg.tile_size) {
                for u0 in (0..self.fact.final_w).step_by(self.cfg.tile_size) {
                    let tile = Tile {
                        u0,
                        v0,
                        u1: (u0 + self.cfg.tile_size).min(self.fact.final_w),
                        v1: (v0 + self.cfg.tile_size).min(self.fact.final_h),
                    };
                    let mut tracer = CollectingTracer::new();
                    warp_tile(&self.inter, &self.fact, &shared, tile, &mut tracer);
                    queues[i % nprocs].push(tasks.len() as u32);
                    tasks.push(TaskSpec {
                        trace: tracer.finish(),
                        phase: 1,
                        deps: vec![],
                        stealable: false,
                        label: TaskLabel::Warp,
                    });
                    i += 1;
                }
            }
        }
        self.scratch.final_img = Some(scratch);

        let wl = FrameWorkload {
            tasks,
            queues,
            steal: self.cfg.policy(),
            barrier_between_phases: true,
        };
        debug_assert!(
            wl.try_validate().is_ok(),
            "assembled old workload must validate"
        );
        wl
    }

    /// Assembles the **new** algorithm's workload for `nprocs` processors.
    ///
    /// `profile` is the per-scanline prediction (typically the previous
    /// frame's measurement, length = intermediate height); partitions are
    /// contiguous atom runs balancing the predicted cost. Phase structure:
    /// per-processor partitioning tasks (parallel prefix over the profile),
    /// composite chunks depending on them, and per-band warp tasks depending
    /// on exactly the composite tasks whose rows they read — no barrier.
    pub fn new_workload(&mut self, nprocs: usize, profile: &[u64]) -> FrameWorkload {
        assert!(nprocs > 0);
        assert_eq!(profile.len(), self.fact.inter_h, "profile covers the image");
        let natoms = self.atoms.len();
        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); nprocs];

        // Partition in atom units so partitions reuse the captured traces.
        let atom_costs: Vec<u64> = self
            .atoms
            .iter()
            .map(|(rows, _)| rows.clone().map(|y| profile[y]).sum())
            .collect();
        let parts: Vec<Range<usize>> = if self.cfg.profiled_partition {
            balanced_contiguous(0..natoms, &atom_costs, nprocs)
        } else {
            equal_contiguous(0..natoms, nprocs)
        };

        // Phase 0: partitioning (parallel prefix over the profile region).
        // Each processor scans its block of the profile and writes the
        // cumulative array; a small combine follows.
        let cum = match self.scratch.cum.take() {
            Some(c) if c.len() == profile.len() => c,
            stale => {
                if let Some(c) = stale {
                    self.scratch.retired.push(Box::new(c));
                }
                vec![0u64; profile.len()]
            }
        };
        let totals = match self.scratch.totals.take() {
            Some(t) if t.len() == nprocs => t,
            stale => {
                if let Some(t) = stale {
                    self.scratch.retired.push(Box::new(t));
                }
                vec![0u64; nprocs]
            }
        };
        let region = self.range.clone();
        let blocks = equal_contiguous(region.clone(), nprocs);
        let mut partition_ids = Vec::with_capacity(nprocs);
        for (p, block) in blocks.iter().enumerate() {
            let mut tracer = CollectingTracer::new();
            for y in block.clone() {
                tracer.read(&profile[y] as *const u64 as usize, 8);
                tracer.work(WorkKind::Other, 3);
                tracer.write(&cum[y] as *const u64 as usize, 8);
            }
            // Combine: publish the block total, read all totals, then the
            // boundary binary search (log-cost).
            tracer.write(&totals[p] as *const u64 as usize, 8);
            for t in totals.iter() {
                tracer.read(t as *const u64 as usize, 8);
            }
            tracer.work(
                WorkKind::Other,
                30 + 10 * (usize::BITS - nprocs.leading_zeros()),
            );
            partition_ids.push(tasks.len() as u32);
            queues[p].push(tasks.len() as u32);
            tasks.push(TaskSpec {
                trace: tracer.finish(),
                phase: 0,
                deps: vec![],
                stealable: false,
                label: TaskLabel::Partition,
            });
        }
        self.scratch.cum = Some(cum);
        self.scratch.totals = Some(totals);

        // Phase 1: compositing chunks, contiguous per processor.
        // atom index → composite task id, for warp dependencies.
        let mut atom_task = vec![0u32; natoms];
        for (p, part) in parts.iter().enumerate() {
            for a in part.clone() {
                atom_task[a] = tasks.len() as u32;
                queues[p].push(tasks.len() as u32);
                tasks.push(TaskSpec {
                    trace: self.atoms[a].1.clone(),
                    phase: 1,
                    deps: partition_ids.clone(),
                    stealable: self.cfg.steal,
                    label: TaskLabel::Composite,
                });
            }
        }

        // Phase 2: per-band warps. Band rows = the partition's rows; the
        // bilinear footprint also reads the first row of the next band, so
        // that atom is a dependency too.
        let mut scratch = self.take_final_scratch();
        {
            let shared = SharedFinal::new(&mut scratch);
            for (p, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                // The first band extends one row below the clipped region
                // (those final pixels bilinearly read the first composited
                // row).
                let band_lo = if part.start == 0 {
                    self.atoms[part.start].0.start.saturating_sub(1)
                } else {
                    self.atoms[part.start].0.start
                };
                let band_hi = self.atoms[part.end - 1].0.end;
                let mut tracer = CollectingTracer::new();
                warp_row_band(
                    &self.inter,
                    &self.fact,
                    &shared,
                    (band_lo, band_hi),
                    &mut tracer,
                );
                let mut deps: Vec<u32> = part.clone().map(|a| atom_task[a]).collect();
                if part.end < natoms {
                    deps.push(atom_task[part.end]); // the boundary row's atom
                }
                queues[p].push(tasks.len() as u32);
                tasks.push(TaskSpec {
                    trace: tracer.finish(),
                    phase: 2,
                    deps,
                    stealable: false,
                    label: TaskLabel::Warp,
                });
            }
        }
        self.scratch.final_img = Some(scratch);

        let wl = FrameWorkload {
            tasks,
            queues,
            steal: self.cfg.policy(),
            barrier_between_phases: false,
        };
        debug_assert!(
            wl.try_validate().is_ok(),
            "assembled new workload must validate"
        );
        wl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_memsim::{replay, replay_steady, Platform};
    use swr_volume::{classify, Phantom};

    fn scene() -> (EncodedVolume, ViewSpec) {
        let vol = Phantom::MriBrain.generate([20, 20, 14], 5);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        (
            EncodedVolume::encode(&c),
            ViewSpec::new([20, 20, 14]).rotate_y(0.4),
        )
    }

    #[test]
    fn capture_produces_atoms_and_profile() {
        let (enc, view) = scene();
        let cf = capture_frame(&enc, &view, &CaptureConfig::default(), true, false);
        assert!(cf.atom_count() > 0);
        assert!(cf.profile.iter().sum::<u64>() > 0);
        // Clipped range is a subset of the image.
        assert!(cf.range().len() <= cf.factorization().inter_h);
    }

    #[test]
    fn old_workload_replays_on_all_platforms() {
        let (enc, view) = scene();
        let mut cf = capture_frame(&enc, &view, &CaptureConfig::default(), false, false);
        for platform in [
            Platform::challenge(),
            Platform::dash(),
            Platform::ideal_dsm(),
            Platform::origin2000(),
        ] {
            let wl = cf.old_workload(4);
            let r = replay(&platform, &wl);
            assert!(r.total_cycles > 0, "{}", platform.name);
            assert!(r.busy_total() > 0);
            assert!(r.misses.total() > 0);
        }
    }

    #[test]
    fn new_workload_replays_and_beats_old_on_dsm() {
        let (enc, view) = scene();
        let cfg = CaptureConfig::default();
        let mut old_cf = capture_frame(&enc, &view, &cfg, false, false);
        let mut new_cf = capture_frame(&enc, &view, &cfg, true, false);
        let profile = new_cf.profile.clone();
        let platform = Platform::ideal_dsm();
        let p = 8;
        // Steady-state animation frames: caches warm, so the inter-phase
        // communication shows up as (true-)sharing misses.
        let old = replay_steady(&platform, &old_cf.old_workload(p), 1);
        let new = replay_steady(&platform, &new_cf.new_workload(p, &profile), 1);
        // The headline result: the new algorithm reduces sharing misses.
        assert!(
            old.misses.true_sharing > 0,
            "old algorithm must exhibit true sharing in steady state"
        );
        assert!(
            new.misses.true_sharing < old.misses.true_sharing,
            "true sharing: new {} vs old {}",
            new.misses.true_sharing,
            old.misses.true_sharing
        );
        assert!(new.total_cycles > 0 && old.total_cycles > 0);
    }

    #[test]
    fn new_workload_dependency_structure() {
        let (enc, view) = scene();
        let mut cf = capture_frame(&enc, &view, &CaptureConfig::default(), true, false);
        let profile = cf.profile.clone();
        let wl = cf.new_workload(3, &profile);
        wl.validate();
        assert!(!wl.barrier_between_phases);
        let parts = wl
            .tasks
            .iter()
            .filter(|t| t.label == TaskLabel::Partition)
            .count();
        let warps = wl
            .tasks
            .iter()
            .filter(|t| t.label == TaskLabel::Warp)
            .count();
        assert_eq!(parts, 3);
        assert!((1..=3).contains(&warps));
        // Every composite task depends on every partition task.
        for t in wl.tasks.iter().filter(|t| t.label == TaskLabel::Composite) {
            assert_eq!(t.deps.len(), 3);
        }
        // Warp tasks depend on at least their own atoms.
        for t in wl.tasks.iter().filter(|t| t.label == TaskLabel::Warp) {
            assert!(!t.deps.is_empty());
        }
    }

    #[test]
    fn repeated_assembly_does_not_grow_scratch() {
        let (enc, view) = scene();
        let mut cf = capture_frame(&enc, &view, &CaptureConfig::default(), true, false);
        let profile = cf.profile.clone();
        assert_eq!(cf.scratch_allocations(), 0, "nothing held before assembly");
        cf.old_workload(4);
        cf.new_workload(4, &profile);
        let baseline = cf.scratch_allocations();
        // The old keepalive design leaked one buffer set per call; reuse
        // must keep the count flat over many assemblies.
        for _ in 0..16 {
            cf.old_workload(4);
            cf.new_workload(4, &profile);
        }
        assert_eq!(cf.scratch_allocations(), baseline);
        // Changing the processor count retires the totals buffer once...
        cf.new_workload(8, &profile);
        let grown = cf.scratch_allocations();
        assert_eq!(grown, baseline + 1);
        // ...and then the new size is reused too.
        for _ in 0..8 {
            cf.new_workload(8, &profile);
        }
        assert_eq!(cf.scratch_allocations(), grown);
    }

    #[test]
    fn reused_scratch_yields_identical_workloads() {
        let (enc, view) = scene();
        let mut cf = capture_frame(&enc, &view, &CaptureConfig::default(), true, false);
        let profile = cf.profile.clone();
        // Buffer reuse means the traced addresses are stable call-to-call:
        // replaying two assemblies of the same workload must agree exactly.
        let a = replay(&Platform::ideal_dsm(), &cf.new_workload(3, &profile));
        let b = replay(&Platform::ideal_dsm(), &cf.new_workload(3, &profile));
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.misses.total(), b.misses.total());
    }

    #[test]
    fn workloads_scale_down_to_one_processor() {
        let (enc, view) = scene();
        let mut cf = capture_frame(&enc, &view, &CaptureConfig::default(), false, false);
        let profile = cf.profile.clone();
        let w1 = cf.old_workload(1);
        let r1 = replay(&Platform::ideal_dsm(), &w1);
        assert_eq!(r1.steals, 0, "nothing to steal from");
        let n1 = cf.new_workload(1, &profile);
        let rn = replay(&Platform::ideal_dsm(), &n1);
        assert!(rn.total_cycles > 0);
    }
}
