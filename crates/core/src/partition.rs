//! Work partitioning: the old algorithm's interleaved chunks and warp tiles,
//! and the new algorithm's profile-balanced contiguous partitions.

use crate::prefix::prefix_sum;
use std::ops::Range;
use swr_render::Tile;

/// Splits `rows` into chunks of `chunk_rows` scanlines and deals them
/// round-robin to `nprocs` queues, preserving order within each queue —
/// the old algorithm's initial compositing assignment (§3.1).
pub fn interleaved_chunks(
    rows: Range<usize>,
    chunk_rows: usize,
    nprocs: usize,
) -> Vec<Vec<Range<usize>>> {
    assert!(chunk_rows > 0 && nprocs > 0);
    let mut queues = vec![Vec::new(); nprocs];
    for (i, start) in rows.clone().step_by(chunk_rows).enumerate() {
        let end = (start + chunk_rows).min(rows.end);
        queues[i % nprocs].push(start..end);
    }
    queues
}

/// Splits a `w × h` final image into `tile × tile` square tiles (clipped at
/// the edges) and deals them round-robin to `nprocs` lists — the old
/// algorithm's warp assignment (§3.1, Figure 3).
pub fn make_tiles(w: usize, h: usize, tile: usize, nprocs: usize) -> Vec<Vec<Tile>> {
    assert!(tile > 0 && nprocs > 0);
    let mut lists = vec![Vec::new(); nprocs];
    let mut i = 0;
    for v0 in (0..h).step_by(tile) {
        for u0 in (0..w).step_by(tile) {
            lists[i % nprocs].push(Tile {
                u0,
                v0,
                u1: (u0 + tile).min(w),
                v1: (v0 + tile).min(h),
            });
            i += 1;
        }
    }
    lists
}

/// Equal-scanline-count contiguous partitions of `rows` (the fallback when
/// no profile exists yet, and the ablation baseline).
pub fn equal_contiguous(rows: Range<usize>, nprocs: usize) -> Vec<Range<usize>> {
    assert!(nprocs > 0);
    let n = rows.len();
    let mut parts = Vec::with_capacity(nprocs);
    let mut start = rows.start;
    for p in 0..nprocs {
        let end = rows.start + n * (p + 1) / nprocs;
        parts.push(start..end);
        start = end;
    }
    parts
}

/// Profile-balanced contiguous partitions (§4.3).
///
/// `profile[i]` is the measured cost of scanline `rows.start + i`. The
/// cumulative cost curve is divided into `nprocs` equal areas; each boundary
/// is located with binary search and snapped to the nearest scanline. Every
/// partition is non-empty-compatible: partitions may be empty only when
/// there are fewer scanlines than processors.
pub fn balanced_contiguous(
    rows: Range<usize>,
    profile: &[u64],
    nprocs: usize,
) -> Vec<Range<usize>> {
    assert_eq!(
        profile.len(),
        rows.len(),
        "profile must cover the row range"
    );
    assert!(nprocs > 0);
    if rows.is_empty() {
        return vec![rows; nprocs];
    }
    let cum = prefix_sum(profile);
    let total = *cum.last().expect("non-empty profile");
    if total == 0 {
        return equal_contiguous(rows, nprocs);
    }
    let mut parts = Vec::with_capacity(nprocs);
    let mut start_idx = 0usize;
    for p in 0..nprocs {
        let target = total as u128 * (p as u128 + 1) / nprocs as u128;
        // First index whose cumulative cost reaches the target.
        let end_idx = if p + 1 == nprocs {
            rows.len()
        } else {
            let found = cum.partition_point(|&c| (c as u128) < target);
            // Half-open end is one past the boundary scanline.
            (found + 1).clamp(start_idx, rows.len())
        };
        parts.push(rows.start + start_idx..rows.start + end_idx);
        start_idx = end_idx;
    }
    parts
}

/// Splits each partition into chunks of at most `chunk_rows` scanlines (the
/// steal units of §4.4), keeping order.
pub fn partition_chunks(parts: &[Range<usize>], chunk_rows: usize) -> Vec<Vec<Range<usize>>> {
    assert!(chunk_rows > 0);
    parts
        .iter()
        .map(|part| {
            let mut chunks = Vec::new();
            let mut s = part.start;
            while s < part.end {
                let e = (s + chunk_rows).min(part.end);
                chunks.push(s..e);
                s = e;
            }
            chunks
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiles_range(parts: &[Range<usize>], rows: Range<usize>) {
        assert_eq!(parts.first().unwrap().start, rows.start);
        assert_eq!(parts.last().unwrap().end, rows.end);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start, "partitions must be contiguous");
        }
    }

    #[test]
    fn interleaved_covers_everything_once() {
        let qs = interleaved_chunks(0..103, 4, 3);
        let mut seen = [false; 103];
        for q in &qs {
            for r in q {
                for y in r.clone() {
                    assert!(!seen[y], "row {y} assigned twice");
                    seen[y] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Round-robin: queue 0 holds chunks 0, 3, 6, ...
        assert_eq!(qs[0][0], 0..4);
        assert_eq!(qs[1][0], 4..8);
        assert_eq!(qs[0][1], 12..16);
    }

    #[test]
    fn tiles_cover_final_image() {
        let lists = make_tiles(100, 70, 32, 4);
        let mut area = 0;
        for l in &lists {
            for t in l {
                area += t.area();
                assert!(t.u1 <= 100 && t.v1 <= 70);
            }
        }
        assert_eq!(area, 100 * 70);
    }

    #[test]
    fn equal_contiguous_tiles_range() {
        let parts = equal_contiguous(10..110, 7);
        assert_tiles_range(&parts, 10..110);
        for p in &parts {
            let len = p.len();
            assert!((14..=15).contains(&len), "len = {len}");
        }
    }

    #[test]
    fn balanced_uniform_profile_is_nearly_equal() {
        let profile = vec![10u64; 100];
        let parts = balanced_contiguous(0..100, &profile, 4);
        assert_tiles_range(&parts, 0..100);
        for p in &parts {
            assert!((24..=26).contains(&p.len()), "{p:?}");
        }
    }

    #[test]
    fn balanced_skewed_profile_equalizes_cost() {
        // All the cost in the first 10 scanlines.
        let mut profile = vec![1u64; 100];
        for p in profile.iter_mut().take(10) {
            *p = 1000;
        }
        let parts = balanced_contiguous(0..100, &profile, 4);
        assert_tiles_range(&parts, 0..100);
        let cost = |r: &Range<usize>| r.clone().map(|i| profile[i]).sum::<u64>();
        let costs: Vec<u64> = parts.iter().map(cost).collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        // Perfect balance is impossible (scanline granularity), but the
        // heavy region must be split across processors.
        assert!(max < 2 * (min + 1000), "costs too imbalanced: {costs:?}");
        assert!(
            parts[0].len() < 10,
            "first partition must be small: {parts:?}"
        );
    }

    #[test]
    fn balanced_with_zero_profile_falls_back_to_equal() {
        let parts = balanced_contiguous(5..25, &[0; 20], 4);
        assert_eq!(parts, equal_contiguous(5..25, 4));
    }

    #[test]
    fn balanced_with_offset_rows() {
        let profile = vec![1u64; 50];
        let parts = balanced_contiguous(100..150, &profile, 5);
        assert_tiles_range(&parts, 100..150);
    }

    #[test]
    fn more_procs_than_rows() {
        let parts = balanced_contiguous(0..3, &[5, 5, 5], 8);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 3);
        assert_tiles_range(&parts, 0..3);
    }

    #[test]
    fn partition_chunks_respects_boundaries() {
        let parts = vec![0..10, 10..11, 11..25];
        let chunks = partition_chunks(&parts, 4);
        assert_eq!(chunks[0], vec![0..4, 4..8, 8..10]);
        assert_eq!(chunks[1], vec![10..11]);
        assert_eq!(chunks[2], vec![11..15, 15..19, 19..23, 23..25]);
    }
}
