//! Multi-frame pipelined animation rendering: a persistent worker pool with
//! cross-frame composite/warp overlap.
//!
//! The paper's new algorithm removes the barrier *inside* a frame (§4.5) but
//! still joins every worker at the end of each frame; its future-work
//! discussion points at overlapping successive frames to hide the residual
//! load imbalance. [`AnimationPipeline`] does exactly that for an animation:
//!
//! * **Persistent pool** — `nprocs` workers are spawned once per animation,
//!   not once per frame. Each worker loops over frame indices, parked on a
//!   release gate between frames.
//! * **Two-frame window** — frame state (intermediate + final image, row
//!   flags, steal queues) is double-buffered by frame parity. The driver
//!   publishes frame *N+1* before resolving frame *N*, so a worker that has
//!   finished compositing and warping its band of frame *N* immediately
//!   starts compositing its band of frame *N+1* while stragglers are still
//!   warping frame *N*.
//! * **Epoch-tagged completion flags** — the per-row flags are generation
//!   counters ([`FrameScratch`]'s epoch scheme): a frame-*N* wait is
//!   satisfied only by values `>= N+1`, so a stale flag left in a reused
//!   slot by frame *N−2* can never release frame *N*'s warp.
//! * **Back-pressure and in-order delivery** — completed frames are
//!   snapshotted into owned [`FinalImage`]s and handed to the caller through
//!   a small bounded SPSC ring, in frame order; the caller consumes frame
//!   *N* while *N+1* renders. A full ring blocks the driver, which delays
//!   the next publish, which parks the workers — the window never exceeds
//!   two frames in flight.
//!
//! Per-frame output is bit-identical to the non-pipelined
//! [`NewParallelRenderer`](crate::NewParallelRenderer): partitions only
//! decide *who* composites a row, never its value, and the warp writes every
//! final pixel exactly once. Worker panics in either phase of either
//! in-flight frame are contained exactly as in the single-frame renderer and
//! repaired serially when that frame is resolved; the watchdog measures each
//! wait from its own start, so a frame-*N+1* waiter outwaiting frame-*N*
//! stragglers is not a false stall.

use crate::fault::FaultPlan;
use crate::new_renderer::{
    composite_chunk_rows, extend_band, recomposite_row, rewarp_unfinished_bands, wait_for_rows,
    WaitOutcome, UNCLAIMED,
};
use crate::old_renderer::{pop_or_steal, StealQueue};
use crate::pad::CachePadded;
use crate::partition::{balanced_contiguous, equal_contiguous, partition_chunks};
use crate::placement::{pin_current_thread, PinLedger};
use crate::prefix::parallel_prefix_sum;
use crate::telem;
use crate::{Error, ParallelConfig, RenderStats};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use swr_error::panic_message;
use swr_geom::{Factorization, Mat4, ViewSpec};
use swr_render::{
    composite::occupied_y_bounds_src, warp_row_band, CompositeOpts, FinalImage, IntermediateImage,
    NullTracer, SharedFinal, SharedIntermediate, VolumeSrc,
};
use swr_telemetry::{
    us_to_secs, Correlation, FrameClock, FrameTelemetry, MetricsRegistry, SpanKind, WorkerLog,
};
use swr_volume::EncodedVolume;

/// Completed frames buffered between the driver and the consumer. Two is
/// enough to decouple them; more would only grow latency and memory.
const RING_CAP: usize = 2;

/// Frames of telemetry retained per animation (the earliest frames win —
/// they are the ones equivalence and overlap assertions inspect). Dropping
/// the tail bounds memory for long animations.
const TELEMETRY_CAP: usize = 256;

/// Everything the workers need to know about one published frame. Shared by
/// `Arc` so each worker picks it up with one lock acquisition per frame.
#[derive(Debug)]
struct SlotParams {
    /// Frame index in the animation.
    frame: usize,
    /// Completion epoch (`frame + 1`; 0 means "never completed").
    epoch: u64,
    fact: Factorization,
    region: Range<usize>,
    partitions: Vec<Range<usize>>,
    profiling: bool,
    opts: CompositeOpts,
    /// Clock tick at which the frame was released to the workers.
    publish_us: u64,
}

/// One parity slot of the two-frame window: scheduler state sized once (at
/// the animation's maximum intermediate height), mutated only through
/// atomics and mutexes so the driver can re-arm it between frames while
/// workers run the other slot.
struct SlotState {
    params: Mutex<Option<Arc<SlotParams>>>,
    /// Per-row completion epochs (see [`FrameScratch`] for the scheme).
    rows_done: Vec<AtomicU64>,
    /// Which worker last claimed each row (stall diagnostics).
    row_claim: Vec<CachePadded<AtomicUsize>>,
    /// Profile collection target on profiling frames.
    new_profile: Vec<AtomicU64>,
    /// Per-worker warp completion epochs.
    warp_done: Vec<AtomicU64>,
    /// Per-worker steal queues.
    queues: Vec<StealQueue>,
    /// Compositors still running this slot's frame (lost-row proof).
    active: CachePadded<AtomicUsize>,
    steals: CachePadded<AtomicU64>,
    composited: CachePadded<AtomicU64>,
    watchdog_arms: CachePadded<AtomicU64>,
    panics: Mutex<Vec<(usize, String)>>,
    stalled: Mutex<Option<(usize, u64)>>,
    /// Workers that have fully finished this slot's frame. The driver
    /// resolves the frame once this reaches `nprocs`.
    finished: Mutex<usize>,
    finished_cv: Condvar,
    /// Per-worker span logs for the slot's current frame, swapped out at
    /// resolve time into that frame's telemetry.
    logs: Vec<Mutex<WorkerLog>>,
    driver_log: Mutex<WorkerLog>,
}

impl SlotState {
    fn new(h_max: usize, nprocs: usize) -> Self {
        let cap = if telem::collect() { telem::SPAN_CAP } else { 0 };
        SlotState {
            params: Mutex::new(None),
            rows_done: (0..h_max).map(|_| AtomicU64::new(0)).collect(),
            row_claim: (0..h_max)
                .map(|_| CachePadded::new(AtomicUsize::new(UNCLAIMED)))
                .collect(),
            new_profile: (0..h_max).map(|_| AtomicU64::new(0)).collect(),
            warp_done: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            queues: (0..nprocs).map(|_| StealQueue::default()).collect(),
            active: CachePadded::new(AtomicUsize::new(0)),
            steals: CachePadded::new(AtomicU64::new(0)),
            composited: CachePadded::new(AtomicU64::new(0)),
            watchdog_arms: CachePadded::new(AtomicU64::new(0)),
            panics: Mutex::new(Vec::new()),
            stalled: Mutex::new(None),
            finished: Mutex::new(0),
            finished_cv: Condvar::new(),
            logs: (0..nprocs)
                .map(|p| Mutex::new(WorkerLog::new(p, cap)))
                .collect(),
            driver_log: Mutex::new(WorkerLog::new(
                WorkerLog::DRIVER,
                if telem::collect() { 256 } else { 0 },
            )),
        }
    }

    /// Marks this worker's frame complete and wakes the driver when it is
    /// the last one. Called on every exit path — success, contained panic,
    /// or stall — so the driver's resolve wait always terminates.
    fn arrive(&self, nprocs: usize) {
        let mut n = self.finished.lock();
        *n += 1;
        if *n == nprocs {
            self.finished_cv.notify_all();
        }
    }
}

/// What the release gate tells a waiting worker about frame `n`.
enum GateOutcome {
    /// Frame `n` is published: render it.
    Proceed,
    /// The animation is over and frame `n` will never be published: exit.
    Exit,
}

/// The publish gate: workers park here between frames. `released` counts
/// published frames, so a worker asking about frame `n` proceeds exactly
/// when `released > n`. Shutdown never cancels an already-published frame —
/// every published frame is fully processed by all workers, which is what
/// keeps the driver's resolve waits and the row-flag waits terminating.
struct Gate {
    state: Mutex<(u64, bool)>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    fn release(&self, frame: usize) {
        let mut s = self.state.lock();
        s.0 = frame as u64 + 1;
        self.cv.notify_all();
    }

    fn shutdown(&self) {
        let mut s = self.state.lock();
        s.1 = true;
        self.cv.notify_all();
    }

    fn wait_for(&self, frame: usize) -> GateOutcome {
        let mut s = self.state.lock();
        loop {
            if s.0 > frame as u64 {
                return GateOutcome::Proceed;
            }
            if s.1 {
                return GateOutcome::Exit;
            }
            self.cv.wait(&mut s);
        }
    }
}

/// A completed frame on its way to the sink.
type Delivery = (usize, FinalImage, RenderStats);

/// The bounded in-order SPSC hand-off of completed frames.
struct Ring {
    /// The queued deliveries plus the closed flag.
    state: Mutex<(VecDeque<Delivery>, bool)>,
    /// Signaled when space frees up (or the ring closes).
    space: Condvar,
    /// Signaled when a frame arrives (or the ring closes).
    item: Condvar,
}

impl Ring {
    fn new() -> Self {
        Ring {
            state: Mutex::new((VecDeque::with_capacity(RING_CAP), false)),
            space: Condvar::new(),
            item: Condvar::new(),
        }
    }

    /// Blocks while the ring is full; drops the frame if the ring closed
    /// (the consumer is gone — its panic is already propagating).
    fn push(&self, frame: (usize, FinalImage, RenderStats)) {
        let mut s = self.state.lock();
        while s.0.len() >= RING_CAP && !s.1 {
            self.space.wait(&mut s);
        }
        if !s.1 {
            s.0.push_back(frame);
            self.item.notify_all();
        }
    }

    /// Blocks until a frame is available; `None` once the ring is closed
    /// *and* drained.
    fn pop(&self) -> Option<(usize, FinalImage, RenderStats)> {
        let mut s = self.state.lock();
        loop {
            if let Some(f) = s.0.pop_front() {
                self.space.notify_all();
                return Some(f);
            }
            if s.1 {
                return None;
            }
            self.item.wait(&mut s);
        }
    }

    fn close(&self) {
        let mut s = self.state.lock();
        s.1 = true;
        self.item.notify_all();
        self.space.notify_all();
    }
}

/// Unblocks everything if the consumer unwinds (a panicking `sink`), so the
/// scope join cannot deadlock: workers see the shutdown at their next gate
/// wait, the driver's ring pushes turn into drops.
struct ShutdownGuard<'a> {
    gate: &'a Gate,
    ring: &'a Ring,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.ring.close();
        self.gate.shutdown();
    }
}

/// The work-profile state that persists across frames (and across
/// animations on the same pipeline), identical to the non-pipelined
/// renderer's bookkeeping.
#[derive(Debug, Default)]
struct ProfileState {
    profile: Vec<u64>,
    valid: bool,
    frames_since: usize,
    last_model: Option<Mat4>,
}

/// A multi-frame animation renderer: persistent worker pool, two frames in
/// flight, in-order frame delivery. See the module docs for the design and
/// [`AnimationPipeline::try_render_animation`] for the API.
#[derive(Debug, Default)]
pub struct AnimationPipeline {
    /// Configuration (processor count, steal chunk, profile period) — the
    /// same knobs as the single-frame renderers.
    pub cfg: ParallelConfig,
    /// Compositing options (early termination, depth cueing).
    pub composite_opts: CompositeOpts,
    /// Deterministic fault injection. Unlike the single-frame renderers the
    /// task/warp counters run across the whole animation, so one plan can
    /// target a panic inside any phase of any frame.
    pub fault: Option<FaultPlan>,
    /// Per-frame telemetry of the most recent animation, frame-ordered.
    /// Spans carry their frame id and all frames share one clock, so an
    /// exported trace shows frame N+1's composite spans overlapping frame
    /// N's warp spans. Capped at [`TELEMETRY_CAP`] frames (earliest kept).
    /// A *failed* animation retains the frames resolved before the fault —
    /// including a final partial frame harvested at the fault itself — so
    /// a supervisor can feed a flight recorder with the spans of the frame
    /// that died.
    pub telemetry: Vec<FrameTelemetry>,
    /// Correlation ids stamped onto every frame's telemetry (the service
    /// sets this per request; standalone renders leave it `None`).
    pub correlation: Option<Correlation>,
    state: ProfileState,
}

impl AnimationPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        AnimationPipeline {
            cfg,
            ..Default::default()
        }
    }

    /// The per-scanline profile from the last profiled frame, if any.
    pub fn profile(&self) -> Option<&[u64]> {
        self.state.valid.then_some(self.state.profile.as_slice())
    }

    /// Restart hook for supervisors (`swr-serve`'s session supervisor and
    /// anything else that reuses one pipeline across failures): drops the
    /// cached cross-frame state (work profile + staleness clock), rearms
    /// any attached fault plan's counters, and clears retained telemetry.
    /// The pipeline behaves as freshly constructed on its next animation —
    /// in particular the first frame re-profiles — without reallocating.
    pub fn reset(&mut self) {
        self.state = ProfileState::default();
        if let Some(fp) = &self.fault {
            fp.reset();
        }
        self.telemetry.clear();
    }

    /// Detaches the fault plan, returning it. The retry ladder in
    /// `swr-serve` uses this to re-attempt a faulted request without the
    /// deterministic fault re-firing on the retry.
    pub fn take_fault(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Renders `views` in order, delivering each completed frame to `sink`
    /// as `(frame_index, image, stats)` while later frames are still
    /// rendering. Returns after every frame is delivered, or with the first
    /// typed error (which also stops the animation).
    ///
    /// `sink` runs on the calling thread. A slow sink exerts back-pressure:
    /// at most [`RING_CAP`] completed frames are buffered ahead of it.
    pub fn try_render_animation(
        &mut self,
        enc: &EncodedVolume,
        views: &[ViewSpec],
        sink: impl FnMut(usize, FinalImage, &RenderStats),
    ) -> Result<(), Error> {
        self.try_render_animation_src(VolumeSrc::Flat(enc), views, sink)
    }

    /// Layout-polymorphic form of [`AnimationPipeline::try_render_animation`]:
    /// renders from any [`VolumeSrc`] (flat per-axis RLE or bricked, possibly
    /// streamed through a bounded [`BrickCache`](swr_volume::BrickCache)).
    /// Output is bit-identical across layouts for the same views.
    pub fn try_render_animation_src(
        &mut self,
        src: VolumeSrc<'_>,
        views: &[ViewSpec],
        mut sink: impl FnMut(usize, FinalImage, &RenderStats),
    ) -> Result<(), Error> {
        self.cfg.try_validate()?;
        for view in views {
            view.try_validate()?;
        }
        if views.is_empty() {
            return Ok(());
        }
        let nprocs = self.cfg.nprocs;
        let facts: Vec<Factorization> = views.iter().map(Factorization::from_view).collect();
        // Double buffers sized to the animation's largest frame; each frame
        // renders through an exactly-sized logical window of them.
        let (mut iw, mut ih, mut fw, mut fh) = (1usize, 1usize, 1usize, 1usize);
        for f in &facts {
            iw = iw.max(f.inter_w);
            ih = ih.max(f.inter_h);
            fw = fw.max(f.final_w);
            fh = fh.max(f.final_h);
        }
        let mut inter_a = IntermediateImage::new(iw, ih);
        let mut inter_b = IntermediateImage::new(iw, ih);
        let mut final_a = FinalImage::new(fw, fh);
        let mut final_b = FinalImage::new(fw, fh);
        let slots = [SlotState::new(ih, nprocs), SlotState::new(ih, nprocs)];
        let gate = Gate::new();
        let ring = Ring::new();
        let clock = FrameClock::new();
        let state = std::mem::take(&mut self.state);
        let pins = PinLedger::new();
        let placement = self.cfg.placement;

        let shared_inter = [
            SharedIntermediate::new(&mut inter_a),
            SharedIntermediate::new(&mut inter_b),
        ];
        let shared_final = [
            SharedFinal::new(&mut final_a),
            SharedFinal::new(&mut final_b),
        ];

        let drive = DriverCtx {
            cfg: &self.cfg,
            composite_opts: self.composite_opts,
            correlation: self.correlation,
            fault: self.fault.as_ref(),
            src,
            views,
            facts: &facts,
            slots: &slots,
            gate: &gate,
            ring: &ring,
            clock: &clock,
            shared_inter: &shared_inter,
            shared_final: &shared_final,
            nprocs,
            pins: &pins,
        };

        // The vendored scoped-thread shim has no join handles, so the
        // driver parks its result here before the scope joins it. The
        // telemetry rides outside the Result so a faulted animation still
        // hands back the frames it resolved before dying.
        type DriverOut = (Result<ProfileState, Error>, Vec<FrameTelemetry>);
        let driver_out: Mutex<Option<DriverOut>> = Mutex::new(None);
        let scope_out = crossbeam::scope(|s| {
            for p in 0..nprocs {
                let worker = WorkerCtx {
                    p,
                    nprocs,
                    steal: self.cfg.steal,
                    watchdog: self.cfg.watchdog_timeout,
                    fault: self.fault.as_ref(),
                    src,
                    placement,
                    pins: &pins,
                    slots: &slots,
                    gate: &gate,
                    clock: &clock,
                    shared_inter: &shared_inter,
                    shared_final: &shared_final,
                };
                s.spawn(move |_| worker.run());
            }
            let out_slot = &driver_out;
            s.spawn(move |_| *out_slot.lock() = Some(drive.run(state)));

            // Consume on the caller's thread: frame N is delivered while
            // frame N+1 renders. The guard unblocks the pool if `sink`
            // unwinds.
            let _guard = ShutdownGuard {
                gate: &gate,
                ring: &ring,
            };
            let fault = self.fault.as_ref();
            while let Some((frame, img, stats)) = ring.pop() {
                if let Some(fp) = fault {
                    // Delivery-stage fault injection: a panic here unwinds
                    // through the guard above exactly like a real sink bug.
                    fp.on_sink();
                }
                sink(frame, img, &stats);
            }
        });
        if let Err(payload) = scope_out {
            // A panic in `sink` (workers and the driver contain theirs):
            // keep whatever telemetry the driver parked — a supervisor's
            // flight recorder wants the dying frames — then re-raise it on
            // the caller's thread.
            if let Some((_, telemetry)) = driver_out.lock().take() {
                self.telemetry = telemetry;
            }
            std::panic::resume_unwind(payload);
        }
        let (out, telemetry) = driver_out
            .lock()
            .take()
            .expect("the driver completes before the scope joins");
        self.telemetry = telemetry;
        self.state = out?;
        Ok(())
    }

    /// Convenience form of [`AnimationPipeline::try_render_animation`]
    /// collecting every frame in order.
    pub fn try_render_all(
        &mut self,
        enc: &EncodedVolume,
        views: &[ViewSpec],
    ) -> Result<Vec<FinalImage>, Error> {
        let mut frames = Vec::with_capacity(views.len());
        self.try_render_animation(enc, views, |_, img, _| frames.push(img))?;
        Ok(frames)
    }

    /// Convenience form of [`AnimationPipeline::try_render_animation_src`]
    /// collecting every frame in order.
    pub fn try_render_all_src(
        &mut self,
        src: VolumeSrc<'_>,
        views: &[ViewSpec],
    ) -> Result<Vec<FinalImage>, Error> {
        let mut frames = Vec::with_capacity(views.len());
        self.try_render_animation_src(src, views, |_, img, _| frames.push(img))?;
        Ok(frames)
    }
}

/// Everything one worker thread captures for the animation.
struct WorkerCtx<'a, 'img> {
    p: usize,
    nprocs: usize,
    steal: bool,
    watchdog: Option<std::time::Duration>,
    fault: Option<&'a FaultPlan>,
    src: VolumeSrc<'a>,
    placement: crate::placement::Placement,
    pins: &'a PinLedger,
    slots: &'a [SlotState; 2],
    gate: &'a Gate,
    clock: &'a FrameClock,
    shared_inter: &'a [SharedIntermediate<'img>; 2],
    shared_final: &'a [SharedFinal<'img>; 2],
}

impl WorkerCtx<'_, '_> {
    /// The persistent worker loop: one gate wait and one frame of work per
    /// published frame, until shutdown.
    fn run(&self) {
        // Pin once for the whole animation, before any frame's first-touch
        // writes, so a worker's pages stay on its node across every frame.
        self.pins
            .record(pin_current_thread(self.placement, self.p, self.nprocs));
        for frame in 0.. {
            match self.gate.wait_for(frame) {
                GateOutcome::Proceed => {}
                GateOutcome::Exit => return,
            }
            let slot = &self.slots[frame % 2];
            self.render_frame(slot, frame);
            slot.arrive(self.nprocs);
        }
    }

    /// One worker's share of one frame: composite its queue (plus steals),
    /// then wait on the rows its band reads and warp the band — the same
    /// protocol as the single-frame renderer, against this slot's epoch.
    fn render_frame(&self, slot: &SlotState, frame: usize) {
        let p = self.p;
        let params = slot
            .params
            .lock()
            .clone()
            .expect("gate released only after publish");
        let epoch = params.epoch;
        let fact = &params.fact;
        let rle = self.src.for_axis(fact.principal);
        let inter = self.shared_inter[frame % 2].window(fact.inter_w, fact.inter_h);
        let out = self.shared_final[frame % 2].window(fact.final_w, fact.final_h);
        let collect = telem::collect();
        let mut wlog = slot.logs[p].lock();
        let wlog = &mut *wlog;
        let clock = self.clock;

        let compose = catch_unwind(AssertUnwindSafe(|| {
            let mut local_pixels = 0u64;
            while let Some((rows, victim)) =
                pop_or_steal(p, &slot.queues, self.steal, &slot.steals, None)
            {
                let chunk_start = if collect { clock.now_us() } else { 0 };
                if let Some(v) = victim {
                    if collect {
                        wlog.record_in_frame(
                            SpanKind::Steal,
                            chunk_start,
                            chunk_start,
                            v as u32,
                            rows.start as u32,
                            frame as u32,
                        );
                    }
                }
                if let Some(fp) = self.fault {
                    fp.on_task(p);
                }
                for y in rows.clone() {
                    slot.row_claim[y].store(p, Ordering::Relaxed);
                }
                local_pixels += composite_chunk_rows(
                    rle,
                    fact,
                    &inter,
                    rows.clone(),
                    &params.opts,
                    params.profiling,
                    &slot.new_profile,
                );
                if collect {
                    wlog.record_in_frame(
                        if params.profiling {
                            SpanKind::Profile
                        } else {
                            SpanKind::Composite
                        },
                        chunk_start,
                        clock.now_us(),
                        rows.start as u32,
                        rows.len() as u32,
                        frame as u32,
                    );
                }
                for y in rows {
                    slot.rows_done[y].store(epoch, Ordering::Release);
                }
            }
            slot.composited.fetch_add(local_pixels, Ordering::Relaxed);
        }));
        // Retire whatever happened — the lost-row proof needs every worker
        // to reach zero, and the Release RMW publishes the row flags.
        slot.active.fetch_sub(1, Ordering::Release);
        if let Err(payload) = compose {
            slot.panics
                .lock()
                .push((p, panic_message(payload.as_ref())));
            return; // this frame is repaired at resolve; next frame proceeds
        }

        let mut band = params.partitions[p].clone();
        if band.is_empty() {
            slot.warp_done[p].store(epoch, Ordering::Release);
            return;
        }
        extend_band(&mut band, params.region.start);
        let wait_hi = band.end.min(fact.inter_h - 1);
        if self.watchdog.is_some() {
            slot.watchdog_arms.fetch_add(1, Ordering::Relaxed);
        }
        let wait_from = clock.elapsed();
        let wait_start = if collect { clock.now_us() } else { 0 };
        let outcome = wait_for_rows(
            &slot.rows_done,
            epoch,
            &slot.active,
            band.start..wait_hi + 1,
            self.watchdog,
            clock,
            wait_from,
        );
        if collect {
            wlog.record_in_frame(
                SpanKind::Wait,
                wait_start,
                clock.now_us(),
                band.start as u32,
                (wait_hi + 1 - band.start) as u32,
                frame as u32,
            );
        }
        match outcome {
            WaitOutcome::Ready => {}
            WaitOutcome::Stalled { row, waited_ms } => {
                slot.stalled.lock().get_or_insert((row, waited_ms));
                return; // warp_done stays below epoch: resolve re-warps
            }
        }
        let warp_start = if collect { clock.now_us() } else { 0 };
        let warp = catch_unwind(AssertUnwindSafe(|| {
            if let Some(fp) = self.fault {
                fp.on_warp(p);
            }
            warp_row_band(&inter, fact, &out, (band.start, band.end), &mut NullTracer);
        }));
        if collect {
            wlog.record_in_frame(
                SpanKind::Warp,
                warp_start,
                clock.now_us(),
                band.start as u32,
                (band.end - band.start) as u32,
                frame as u32,
            );
        }
        match warp {
            Ok(()) => slot.warp_done[p].store(epoch, Ordering::Release),
            Err(payload) => {
                slot.panics
                    .lock()
                    .push((p, panic_message(payload.as_ref())));
            }
        }
    }
}

/// Everything the driver thread captures for the animation.
struct DriverCtx<'a, 'img> {
    cfg: &'a ParallelConfig,
    composite_opts: CompositeOpts,
    correlation: Option<Correlation>,
    fault: Option<&'a FaultPlan>,
    src: VolumeSrc<'a>,
    views: &'a [ViewSpec],
    facts: &'a [Factorization],
    slots: &'a [SlotState; 2],
    gate: &'a Gate,
    ring: &'a Ring,
    clock: &'a FrameClock,
    shared_inter: &'a [SharedIntermediate<'img>; 2],
    shared_final: &'a [SharedFinal<'img>; 2],
    nprocs: usize,
    pins: &'a PinLedger,
}

impl DriverCtx<'_, '_> {
    /// The driver loop: publish frame N+1, then resolve frame N — the
    /// two-frame window falls straight out of this ordering. Always shuts
    /// the gate and closes the ring on the way out, error or not.
    fn run(&self, state: ProfileState) -> (Result<ProfileState, Error>, Vec<FrameTelemetry>) {
        let mut telemetry = Vec::new();
        let out = self.drive(state, &mut telemetry);
        self.gate.shutdown();
        self.ring.close();
        (out, telemetry)
    }

    fn drive(
        &self,
        mut state: ProfileState,
        telemetry: &mut Vec<FrameTelemetry>,
    ) -> Result<ProfileState, Error> {
        let nframes = self.views.len();
        let mut cum_profile: Vec<u64> = Vec::new();
        // The driver's own copies of each in-flight frame's parameters.
        let mut in_flight: [Option<Arc<SlotParams>>; 2] = [None, None];
        let mut last_completion_us = 0u64;
        for frame in 0..nframes {
            in_flight[frame % 2] = Some(self.publish(frame, &mut state, &mut cum_profile));
            if frame >= 1 {
                let params = in_flight[(frame - 1) % 2].take().expect("published");
                self.resolve(params, &mut state, telemetry, &mut last_completion_us)?;
            }
        }
        let params = in_flight[(nframes - 1) % 2].take().expect("published");
        self.resolve(params, &mut state, telemetry, &mut last_completion_us)?;
        Ok(state)
    }

    /// Arms the parity slot for `frame` and releases the workers into it.
    /// The slot is quiescent here: its previous frame (`frame - 2`) was
    /// resolved before this call, and workers touch a slot only between
    /// gate release and their arrival.
    fn publish(
        &self,
        frame: usize,
        state: &mut ProfileState,
        cum_profile: &mut Vec<u64>,
    ) -> Arc<SlotParams> {
        let slot = &self.slots[frame % 2];
        let epoch = frame as u64 + 1;
        let fact = self.facts[frame].clone();
        let h = fact.inter_h;
        let rle = self.src.for_axis(fact.principal);
        let part_start = self.clock.now_us();

        let region: Range<usize> = if self.cfg.empty_region_clip {
            match occupied_y_bounds_src(rle, &fact) {
                Some((lo, hi)) => lo..hi + 1,
                None => 0..0, // empty volume: an all-empty frame
            }
        } else {
            0..h
        };

        // Profile staleness policy, evaluated against the newest *resolved*
        // profile: with two frames in flight, frame N+1 is published before
        // frame N's profile is harvested, so a fresh profile takes effect
        // two frames after collection. Partitions never affect pixels, so
        // this lag is invisible in the output.
        let have_profile = state.valid && state.profile.len() == h;
        let stale = match (self.cfg.profile_every_degrees, &state.last_model) {
            (Some(deg), Some(last)) => {
                last.rotation_angle_to(&self.views[frame].model)
                    .to_degrees()
                    >= deg
            }
            (Some(_), None) => true,
            (None, _) => state.frames_since + 1 >= self.cfg.profile_every,
        };
        let profiling =
            self.cfg.profiled_partition && !region.is_empty() && (!have_profile || stale);

        let partitions: Vec<Range<usize>> = if region.is_empty() {
            vec![0..0; self.nprocs]
        } else if self.cfg.profiled_partition && have_profile {
            cum_profile.clear();
            cum_profile.extend_from_slice(&state.profile[region.clone()]);
            if let Some(fp) = &self.fault {
                if fp.zero_profile {
                    cum_profile.fill(0);
                }
                if fp.corrupt_profile {
                    fp.scramble(cum_profile);
                }
            }
            let _cum = parallel_prefix_sum(cum_profile, self.nprocs);
            balanced_contiguous(region.clone(), cum_profile, self.nprocs)
        } else {
            equal_contiguous(region.clone(), self.nprocs)
        };
        let chunk_rows = self.cfg.effective_chunk_rows(region.len().max(1));

        // Re-arm the slot. Row completion flags are *not* reset: the epoch
        // comparison makes the stale values (at most `epoch - 2`) inert.
        for (y, flag) in slot.rows_done.iter().enumerate().take(h) {
            if !region.contains(&y) {
                flag.store(epoch, Ordering::Release);
            }
        }
        for claim in slot.row_claim.iter().take(h) {
            claim.store(UNCLAIMED, Ordering::Relaxed);
        }
        if profiling {
            for counter in slot.new_profile.iter().take(h) {
                counter.store(0, Ordering::Relaxed);
            }
        }
        for (queue, chunks) in slot
            .queues
            .iter()
            .zip(partition_chunks(&partitions, chunk_rows))
        {
            let mut q = queue.lock();
            q.clear();
            q.extend(chunks);
        }
        if let Some(n) = self.fault.and_then(|fp| fp.truncate_queue) {
            let mut q = slot.queues[0].lock();
            for _ in 0..n {
                q.pop_back();
            }
        }
        slot.active.store(self.nprocs, Ordering::Release);
        slot.steals.store(0, Ordering::Relaxed);
        slot.composited.store(0, Ordering::Relaxed);
        slot.watchdog_arms.store(0, Ordering::Relaxed);
        slot.panics.lock().clear();
        *slot.stalled.lock() = None;
        *slot.finished.lock() = 0;

        // Guard rows for the warp's bilinear taps just outside the region,
        // and a clean logical final image (band warps only write pixels
        // whose source row lands in the composited region).
        let inter = self.shared_inter[frame % 2].window(fact.inter_w, h);
        // SAFETY: the slot (and thus its buffers) is quiescent until the
        // gate release below.
        unsafe {
            if region.start > 0 {
                inter.clear_row(region.start - 1);
            }
            if region.end < h {
                inter.clear_row(region.end);
            }
            self.shared_final[frame % 2]
                .window(fact.final_w, fact.final_h)
                .fill_black();
        }

        let publish_us = self.clock.now_us();
        if telem::collect() {
            slot.driver_log.lock().record_in_frame(
                SpanKind::Partition,
                part_start,
                publish_us,
                region.start as u32,
                region.len() as u32,
                frame as u32,
            );
        }
        let params = Arc::new(SlotParams {
            frame,
            epoch,
            fact,
            region,
            partitions,
            profiling,
            opts: CompositeOpts {
                profile: profiling,
                ..self.composite_opts
            },
            publish_us,
        });
        *slot.params.lock() = Some(params.clone());
        self.gate.release(frame);
        params
    }

    /// Waits for every worker to finish `params.frame`, repairs any
    /// contained damage serially (bit-identically, as in the single-frame
    /// renderer), harvests the profile, assembles the frame's telemetry,
    /// and delivers the snapshot in order through the ring.
    fn resolve(
        &self,
        params: Arc<SlotParams>,
        state: &mut ProfileState,
        telemetry: &mut Vec<FrameTelemetry>,
        last_completion_us: &mut u64,
    ) -> Result<(), Error> {
        let frame = params.frame;
        let epoch = params.epoch;
        let slot = &self.slots[frame % 2];
        {
            let mut finished = slot.finished.lock();
            while *finished < self.nprocs {
                slot.finished_cv.wait(&mut finished);
            }
        }
        // From here the slot is quiescent: every worker has arrived and
        // will not touch it again before the next publish.
        let mut stats = RenderStats {
            profiled: params.profiling,
            steals: slot.steals.load(Ordering::Relaxed),
            composited_pixels: slot.composited.load(Ordering::Relaxed),
            ..RenderStats::default()
        };
        let worker_panics = std::mem::take(&mut *slot.panics.lock());
        let first_stall = slot.stalled.lock().take();
        let lost: Vec<usize> = params
            .region
            .clone()
            .filter(|&y| slot.rows_done[y].load(Ordering::Acquire) < epoch)
            .collect();

        let fact = &params.fact;
        let inter = self.shared_inter[frame % 2].window(fact.inter_w, fact.inter_h);
        let out = self.shared_final[frame % 2].window(fact.final_w, fact.final_h);
        if !worker_panics.is_empty() {
            stats.worker_panics = worker_panics.len() as u64;
            if !self.cfg.recover_panics {
                let (worker, message) = worker_panics[0].clone();
                self.harvest_faulted(&params, &stats, telemetry, "worker_panic");
                return Err(Error::WorkerPanicked { worker, message });
            }
            stats.degraded = true;
            stats.repaired_rows = lost.len() as u64;
            let repair_start = self.clock.now_us();
            let rle = self.src.for_axis(fact.principal);
            for &y in &lost {
                recomposite_row(rle, fact, &inter, y, &params.opts);
            }
            rewarp_unfinished_bands(
                &inter,
                fact,
                &out,
                &params.partitions,
                &params.region,
                &slot.warp_done,
                epoch,
            );
            if telem::collect() {
                slot.driver_log.lock().record_in_frame(
                    SpanKind::Repair,
                    repair_start,
                    self.clock.now_us(),
                    lost.len() as u32,
                    stats.worker_panics as u32,
                    frame as u32,
                );
            }
        } else if first_stall.is_some() || !lost.is_empty() {
            let (row, waited_ms) =
                first_stall.unwrap_or_else(|| (lost[0], self.clock.elapsed().as_millis() as u64));
            let holder = match slot.row_claim[row].load(Ordering::Relaxed) {
                UNCLAIMED => None,
                w => Some(w),
            };
            self.harvest_faulted(&params, &stats, telemetry, "stall");
            return Err(Error::Stalled {
                row,
                holder,
                waited_ms,
            });
        }

        if params.profiling && !stats.degraded {
            state.profile.clear();
            state.profile.extend(
                slot.new_profile
                    .iter()
                    .take(fact.inter_h)
                    .map(|a| a.load(Ordering::Relaxed)),
            );
            state.valid = true;
            state.frames_since = 0;
            state.last_model = Some(self.views[frame].model);
        } else if params.profiling {
            // Partial counters from a panicked worker cannot be harvested.
            stats.profiled = false;
        } else {
            state.frames_since += 1;
        }

        let completion_us = self.clock.now_us();
        // Stamp the resolve tick so consumers can time pipelined frames by
        // completion gaps: the ring can release two buffered frames
        // back-to-back, making sink-arrival gaps collapse to ~0 and wrecking
        // any min-frame-time statistic derived from them.
        stats.completion_us = completion_us;
        stats.composite_secs = us_to_secs(completion_us.saturating_sub(params.publish_us));
        // How long this frame overlapped its predecessor: the stretch from
        // this frame's publish to the previous frame's completion, during
        // which both were in flight.
        let overlap_us = last_completion_us.saturating_sub(params.publish_us);
        *last_completion_us = completion_us;

        if telemetry.len() < TELEMETRY_CAP {
            let frames_since = state.frames_since;
            let t = self.harvest(&params, completion_us, &stats, |m| {
                m.inc("watchdog.arms", slot.watchdog_arms.load(Ordering::Relaxed));
                m.set_gauge("profile.frames_since", frames_since as f64);
                m.set_gauge("pipeline.overlap_us", overlap_us as f64);
                m.set_gauge("pipeline.in_flight_max", 2.0);
                m.set_gauge("core.pinned", self.pins.pinned() as f64);
                m.set_gauge("core.numa_node", self.pins.max_numa_node() as f64);
            });
            telemetry.push(t);
        }

        // SAFETY: the frame's warp is complete and the slot is quiescent.
        let img = unsafe { out.snapshot() };
        self.ring.push((frame, img, stats));
        Ok(())
    }

    /// Swaps the slot's span logs out into one frame of telemetry (fresh
    /// logs go back in), stamped with the pipeline's correlation ids and
    /// scoped to the frame's publish→`end` interval. The animation shares
    /// one clock, so spans of overlapping frames stay comparable.
    fn harvest(
        &self,
        params: &SlotParams,
        end: u64,
        stats: &RenderStats,
        extra: impl FnOnce(&mut MetricsRegistry),
    ) -> FrameTelemetry {
        let frame = params.frame;
        let slot = &self.slots[frame % 2];
        let cap = if telem::collect() { telem::SPAN_CAP } else { 0 };
        let driver = std::mem::replace(
            &mut *slot.driver_log.lock(),
            WorkerLog::new(WorkerLog::DRIVER, if telem::collect() { 256 } else { 0 }),
        );
        let workers: Vec<parking_lot::Mutex<WorkerLog>> = slot
            .logs
            .iter()
            .enumerate()
            .map(|(p, log)| {
                parking_lot::Mutex::new(std::mem::replace(&mut *log.lock(), WorkerLog::new(p, cap)))
            })
            .collect();
        let mut t = telem::finish_frame("pipeline", self.clock, driver, workers, stats, extra);
        t.frame_span.start = params.publish_us;
        t.frame_span.end = end;
        t.frame_span.frame = frame as u32;
        t.correlation = self.correlation;
        t
    }

    /// Dump hook for the fault paths: harvests the dying frame's spans
    /// into the telemetry before `resolve` returns its typed error, so a
    /// supervisor's flight recorder sees what every worker was doing when
    /// the frame failed. The frame is tagged with a `frame.faulted`
    /// counter and the fault kind.
    fn harvest_faulted(
        &self,
        params: &SlotParams,
        stats: &RenderStats,
        telemetry: &mut Vec<FrameTelemetry>,
        kind: &str,
    ) {
        if telemetry.len() >= TELEMETRY_CAP {
            return;
        }
        let end = self.clock.now_us();
        let t = self.harvest(params, end, stats, |m| {
            m.inc("frame.faulted", 1);
            m.inc(&format!("frame.faulted.{kind}"), 1);
        });
        telemetry.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NewParallelRenderer;
    use swr_volume::{classify, Phantom};

    fn scene(frames: usize) -> (EncodedVolume, Vec<ViewSpec>) {
        let vol = Phantom::MriBrain.generate([24, 24, 16], 11);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        let views = (0..frames)
            .map(|i| {
                ViewSpec::new([24, 24, 16])
                    .rotate_y((i as f64 * 3.0).to_radians())
                    .rotate_x(0.2)
            })
            .collect();
        (EncodedVolume::encode(&c), views)
    }

    #[test]
    fn pipelined_frames_match_the_single_frame_renderer() {
        let (enc, views) = scene(6);
        let mut reference = NewParallelRenderer::new(ParallelConfig::with_procs(3));
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(3));
        let frames = pipe
            .try_render_all(&enc, &views)
            .expect("animation renders");
        assert_eq!(frames.len(), views.len());
        for (i, (view, img)) in views.iter().zip(&frames).enumerate() {
            assert_eq!(
                img,
                &reference.try_render(&enc, view).expect("reference"),
                "frame {i}"
            );
        }
    }

    #[test]
    fn frames_are_delivered_in_order() {
        let (enc, views) = scene(5);
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(2));
        let mut seen = Vec::new();
        pipe.try_render_animation(&enc, &views, |frame, img, stats| {
            assert!(img.width() > 0);
            assert!(stats.composited_pixels > 0);
            seen.push(frame);
        })
        .expect("animation renders");
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_view_list_is_a_no_op() {
        let (enc, _) = scene(1);
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(2));
        pipe.try_render_animation(&enc, &[], |_, _, _| panic!("no frames expected"))
            .expect("empty animation");
        assert!(pipe.telemetry.is_empty());
    }

    #[test]
    fn invalid_config_is_typed_not_panicking() {
        let (enc, views) = scene(1);
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(0));
        let e = pipe
            .try_render_all(&enc, &views)
            .expect_err("nprocs = 0 must be rejected");
        assert!(matches!(e, Error::InvalidConfig { .. }), "{e}");
    }

    #[test]
    fn sink_panic_unwinds_without_deadlock() {
        let (enc, views) = scene(4);
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(2));
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.try_render_animation(&enc, &views, |frame, _, _| {
                if frame == 1 {
                    panic!("sink exploded");
                }
            })
        }));
        let msg = panic_message(unwound.expect_err("sink panic propagates").as_ref());
        assert!(msg.contains("sink exploded"), "{msg}");
    }

    #[test]
    fn injected_sink_fault_unwinds_without_deadlock() {
        let (enc, views) = scene(4);
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(2));
        pipe.fault = Some(FaultPlan::new(0).panic_in_sink_at(1));
        let mut delivered = Vec::new();
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.try_render_animation(&enc, &views, |frame, _, _| delivered.push(frame))
        }));
        let msg = panic_message(unwound.expect_err("sink fault propagates").as_ref());
        assert!(msg.contains("sink panic delivering frame 1"), "{msg}");
        // Frame 0 reached the sink before the armed delivery; frame 1's
        // delivery panicked before the sink saw it.
        assert_eq!(delivered, vec![0]);
    }

    #[test]
    fn reset_restores_a_fresh_pipeline_after_a_sink_fault() {
        let (enc, views) = scene(3);
        let mut reference = NewParallelRenderer::new(ParallelConfig::with_procs(2));
        let mut pipe = AnimationPipeline::new(ParallelConfig::with_procs(2));
        pipe.fault = Some(FaultPlan::new(0).panic_in_sink_at(0));
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pipe.try_render_animation(&enc, &views, |_, _, _| {})
        }));
        assert!(unwound.is_err(), "armed sink fault must fire");
        // Supervisor restart: detach the fault, reset, and the same
        // pipeline renders the animation bit-identically to the
        // single-frame renderer.
        assert!(pipe.take_fault().is_some());
        pipe.reset();
        assert!(pipe.profile().is_none(), "profile state dropped");
        assert!(pipe.telemetry.is_empty(), "telemetry cleared");
        let frames = pipe
            .try_render_all(&enc, &views)
            .expect("clean after reset");
        for (view, img) in views.iter().zip(&frames) {
            assert_eq!(img, &reference.try_render(&enc, view).expect("reference"));
        }
    }

    /// Satellite regression: a reused slot's completion flags from frame N
    /// must never satisfy frame N+2's wait (same parity slot), even under
    /// adversarial interleavings. Stress loop over the real `wait_for_rows`.
    #[test]
    fn stale_epoch_flags_never_release_a_wait() {
        let rows = 64usize;
        let rows_done: Vec<AtomicU64> = (0..rows).map(|_| AtomicU64::new(0)).collect();
        for round in 0u64..200 {
            let old_epoch = round * 2 + 1;
            let new_epoch = old_epoch + 2;
            // The slot still carries frame N's flags (epoch `old_epoch`).
            for f in &rows_done {
                f.store(old_epoch, Ordering::Release);
            }
            let active = AtomicUsize::new(1);
            let clock = FrameClock::new();
            crossbeam::scope(|s| {
                let rows_done = &rows_done;
                let active = &active;
                s.spawn(move |_| {
                    // A compositor completes frame N+2's rows back-to-front,
                    // yielding to shuffle the interleaving across rounds.
                    for y in (0..rows).rev() {
                        if y % 7 == (round % 7) as usize {
                            std::thread::yield_now();
                        }
                        rows_done[y].store(new_epoch, Ordering::Release);
                    }
                    active.fetch_sub(1, Ordering::Release);
                });
                let outcome = wait_for_rows(
                    rows_done,
                    new_epoch,
                    active,
                    0..rows,
                    None,
                    &clock,
                    clock.elapsed(),
                );
                assert!(matches!(outcome, WaitOutcome::Ready));
                // The wait may only have returned once every row reached the
                // new epoch — stale frame-N flags must not have counted.
                for f in rows_done {
                    assert!(f.load(Ordering::Acquire) >= new_epoch);
                }
            })
            .expect("no panics");
        }
        // And with no compositor running, stale flags alone must prove a
        // stall immediately instead of being mistaken for completion.
        for f in &rows_done {
            f.store(3, Ordering::Release);
        }
        let active = AtomicUsize::new(0);
        let clock = FrameClock::new();
        let outcome = wait_for_rows(
            &rows_done,
            5,
            &active,
            0..rows,
            None,
            &clock,
            clock.elapsed(),
        );
        assert!(matches!(outcome, WaitOutcome::Stalled { row: 0, .. }));
    }
}
