//! The *old* parallel shear-warp renderer (§3.1), native threaded execution.
//!
//! Compositing: interleaved chunks of intermediate-image scanlines in
//! per-processor queues, with dynamic stealing from the back of the
//! fullest victim. A global barrier separates the phases. Warp: square
//! tiles of the final image, statically assigned round-robin (no stealing —
//! "there is little computation in the warp phase").
//!
//! # Fault containment
//!
//! The inter-phase barrier is an arrival counter rather than
//! `std::sync::Barrier`: every worker — including one whose compositing
//! panicked under `catch_unwind` — increments it before retiring, so the
//! barrier wait terminates by construction and a single panic can never
//! deadlock the survivors. After the join the frame is resolved exactly as
//! in the new renderer: lost scanlines are re-composited serially and the
//! whole image re-warped (bit-identical to an undisturbed render), or a
//! typed [`enum@Error`] is returned. See the crate docs' *Failure model*.

use crate::fault::FaultPlan;
use crate::pad::CachePadded;
use crate::partition::{interleaved_chunks, make_tiles};
use crate::placement::{pin_current_thread, PinLedger};
use crate::telem;
use crate::{Error, ParallelConfig, RenderStats};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use swr_error::panic_message;
use swr_geom::{Factorization, ViewSpec};
use swr_render::{
    composite_scanline_slice_src, composite_scanline_slice_untraced_src, warp_full, warp_tile,
    CompositeOpts, FinalImage, IntermediateImage, NullTracer, SharedFinal, SharedIntermediate,
    VolumeSrc,
};
use swr_telemetry::{us_to_secs, FrameClock, FrameTelemetry, SpanKind};
use swr_volume::EncodedVolume;

/// Row-claim sentinel: no worker ever claimed the row.
const UNCLAIMED: usize = usize::MAX;

/// Per-worker steal queue, padded so neighbouring workers' queue locks never
/// share a cache line (§5's false-sharing remedy).
pub(crate) type StealQueue = CachePadded<Mutex<VecDeque<Range<usize>>>>;

/// Pops the caller's queue, or steals from the back of the fullest victim.
/// Returns the chunk plus the victim it was stolen from (`None` for the
/// caller's own work), so callers can emit steal telemetry.
///
/// Steals are *adaptive*: once the victim's queue has dropped below one
/// chunk per processor (`queues.len()`), a stolen chunk is halved — the
/// thief takes the back half (floor one row) and the front half goes back
/// to the victim. Late-frame steals therefore move ever smaller row counts,
/// shrinking the end-of-frame straggler window where one worker churns
/// through a large stolen chunk while the rest idle at the barrier. When
/// `adapt` is given, the smallest chunk handed out is recorded into it
/// (`fetch_min`), so telemetry can report the final granularity.
pub(crate) fn pop_or_steal(
    me: usize,
    queues: &[StealQueue],
    steal: bool,
    steals: &AtomicU64,
    adapt: Option<&AtomicU64>,
) -> Option<(Range<usize>, Option<usize>)> {
    if let Some(r) = queues[me].lock().pop_front() {
        return Some((r, None));
    }
    if !steal {
        return None;
    }
    loop {
        // Victim selection: the queue with the most remaining chunks.
        let mut best: Option<(usize, usize)> = None;
        for (v, q) in queues.iter().enumerate() {
            if v == me {
                continue;
            }
            let len = q.lock().len();
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((v, len));
            }
        }
        let (v, _) = best?;
        let stolen = {
            let mut q = queues[v].lock();
            match q.pop_back() {
                Some(r) if q.len() < queues.len() && r.len() > 1 => {
                    let mid = r.end - r.len() / 2;
                    q.push_back(r.start..mid);
                    Some(mid..r.end)
                }
                other => other,
            }
        };
        if let Some(r) = stolen {
            steals.fetch_add(1, Ordering::Relaxed);
            if let Some(a) = adapt {
                a.fetch_min(r.len() as u64, Ordering::Relaxed);
            }
            return Some((r, Some(v)));
        }
        // Raced with the victim finishing its queue; rescan.
    }
}

/// The old parallel renderer.
#[derive(Debug, Default)]
pub struct OldParallelRenderer {
    /// Configuration (processor count, chunk/tile sizes, stealing).
    pub cfg: ParallelConfig,
    /// Compositing options (early termination, depth cueing).
    pub composite_opts: CompositeOpts,
    /// Deterministic fault injection for the containment tests.
    pub fault: Option<FaultPlan>,
    /// Telemetry of the most recent frame: per-worker spans plus the
    /// metrics registry. `None` until a frame completes. With the
    /// `telemetry` feature off the spans are absent (recording compiles
    /// away) but the metrics registry is still populated from the stats.
    pub last_telemetry: Option<FrameTelemetry>,
    inter: Option<IntermediateImage>,
}

impl OldParallelRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        OldParallelRenderer {
            cfg,
            ..Default::default()
        }
    }

    /// Renders one frame, panicking on any fault (legacy API).
    pub fn render(&mut self, enc: &EncodedVolume, view: &ViewSpec) -> FinalImage {
        self.try_render(enc, view).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders one frame with statistics, panicking on any fault
    /// (legacy API).
    pub fn render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> (FinalImage, RenderStats) {
        self.try_render_with_stats(enc, view)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders one frame, returning a typed error on invalid inputs,
    /// unrecovered worker panics, or lost work.
    pub fn try_render(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> Result<FinalImage, Error> {
        self.try_render_with_stats(enc, view).map(|(img, _)| img)
    }

    /// Renders one frame, returning execution statistics (including any
    /// recorded degradation) or a typed error.
    pub fn try_render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> Result<(FinalImage, RenderStats), Error> {
        self.try_render_with_stats_src(VolumeSrc::Flat(enc), view)
    }

    /// Renders one frame from any [`VolumeSrc`] layout (flat per-axis RLE or
    /// bricked, possibly streamed). Output is bit-identical across layouts.
    pub fn render_src(&mut self, src: VolumeSrc<'_>, view: &ViewSpec) -> FinalImage {
        self.try_render_with_stats_src(src, view)
            .map(|(img, _)| img)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Layout-polymorphic form of [`OldParallelRenderer::try_render_with_stats`].
    pub fn try_render_with_stats_src(
        &mut self,
        src: VolumeSrc<'_>,
        view: &ViewSpec,
    ) -> Result<(FinalImage, RenderStats), Error> {
        self.cfg.try_validate()?;
        view.try_validate()?;
        let fact = Factorization::from_view(view);
        let rle = src.for_axis(fact.principal);
        let nprocs = self.cfg.nprocs;

        // Reuse the intermediate buffer across frames.
        let (w, h) = (fact.inter_w, fact.inter_h);
        let inter = match &mut self.inter {
            Some(img) if img.width() == w && img.height() == h => {
                img.clear();
                self.inter.as_mut().expect("checked above")
            }
            slot => {
                *slot = Some(IntermediateImage::new(w, h));
                slot.as_mut().expect("just set")
            }
        };

        let collect = telem::collect();
        let clock = FrameClock::new();
        let mut driver = telem::driver_log();
        let logs = telem::worker_logs(nprocs);

        // The old algorithm "blindly composites the intermediate image from
        // the very beginning to the end": chunks cover every scanline.
        let part_start = clock.now_us();
        let chunk_rows = self.cfg.effective_chunk_rows(h);
        let queues: Vec<StealQueue> = interleaved_chunks(0..h, chunk_rows, nprocs)
            .into_iter()
            .map(|v| CachePadded::new(Mutex::new(v.into())))
            .collect();
        if let Some(n) = self.fault.as_ref().and_then(|fp| fp.truncate_queue) {
            let mut q = queues[0].lock();
            for _ in 0..n {
                q.pop_back();
            }
        }
        let tile_lists = make_tiles(fact.final_w, fact.final_h, self.cfg.tile_size, nprocs);
        if collect {
            driver.record(
                SpanKind::Partition,
                part_start,
                clock.now_us(),
                chunk_rows as u32,
                h as u32,
            );
        }

        let mut out = FinalImage::new(fact.final_w, fact.final_h);
        let mut stats = RenderStats::default();
        // Hot shared counters each own their cache line: workers bump them
        // from every chunk, and sharing a line would ping-pong it.
        let steals = CachePadded::new(AtomicU64::new(0));
        let composited = CachePadded::new(AtomicU64::new(0));
        // Smallest chunk the adaptive steal protocol handed out this frame
        // (stays at the configured size when no steal was ever halved).
        let min_chunk = CachePadded::new(AtomicU64::new(chunk_rows as u64));
        // Completion bookkeeping for the repair path.
        let rows_done: Vec<AtomicBool> = (0..h).map(|_| AtomicBool::new(false)).collect();
        let row_claim: Vec<AtomicUsize> = (0..h).map(|_| AtomicUsize::new(UNCLAIMED)).collect();
        // Arrival-counter barrier: panicked workers arrive too, so the wait
        // terminates even when a worker dies mid-composite.
        let arrived = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let composite_end_us = AtomicU64::new(0);
        let opts = self.composite_opts;
        let watchdog = self.cfg.watchdog_timeout;
        let pins = PinLedger::new();
        let placement = self.cfg.placement;
        {
            let shared = SharedIntermediate::new(inter);
            let shared_out = SharedFinal::new(&mut out);
            let fact = &fact;
            let fault = self.fault.as_ref();
            crossbeam::scope(|s| {
                #[allow(clippy::needless_range_loop)]
                for p in 0..nprocs {
                    let queues = &queues;
                    let steals: &AtomicU64 = &steals;
                    let composited: &AtomicU64 = &composited;
                    let min_chunk: &AtomicU64 = &min_chunk;
                    let rows_done = &rows_done;
                    let row_claim = &row_claim;
                    let arrived = &arrived;
                    let abort = &abort;
                    let panics = &panics;
                    let shared = &shared;
                    let shared_out = &shared_out;
                    let tiles = &tile_lists[p];
                    let composite_end_us = &composite_end_us;
                    let logs = &logs;
                    let clock = &clock;
                    let steal = self.cfg.steal;
                    let pins = &pins;
                    s.spawn(move |_| {
                        // Pin before the first queue pop: all of this
                        // worker's intermediate-row writes then stay on its
                        // node for the warp phase to read back locally.
                        pins.record(pin_current_thread(placement, p, nprocs));
                        // Checked out once per frame; recording into it is
                        // lock-free from here on.
                        let mut wlog = logs[p].lock();
                        let wlog = &mut *wlog;
                        let compose = catch_unwind(AssertUnwindSafe(|| {
                            let mut local_pixels = 0u64;
                            while let Some((rows, victim)) =
                                pop_or_steal(p, queues, steal, steals, Some(min_chunk))
                            {
                                let chunk_start = if collect { clock.now_us() } else { 0 };
                                if let Some(v) = victim {
                                    if collect {
                                        wlog.mark(
                                            SpanKind::Steal,
                                            chunk_start,
                                            v as u32,
                                            rows.start as u32,
                                        );
                                    }
                                }
                                if let Some(fp) = fault {
                                    fp.on_task(p);
                                }
                                for y in rows.clone() {
                                    row_claim[y].store(p, Ordering::Relaxed);
                                }
                                // Slice-outer traversal within the chunk keeps
                                // the volume streaming in storage order.
                                for m in 0..fact.slice_count() {
                                    let k = fact.slice_for_step(m);
                                    for y in rows.clone() {
                                        // SAFETY: each scanline belongs to exactly
                                        // one chunk and each chunk is popped once.
                                        let mut row = unsafe { shared.row_view(y) };
                                        local_pixels += composite_scanline_slice_untraced_src(
                                            rle, fact, &mut row, k, &opts,
                                        );
                                    }
                                }
                                if collect {
                                    wlog.record(
                                        SpanKind::Composite,
                                        chunk_start,
                                        clock.now_us(),
                                        rows.start as u32,
                                        rows.len() as u32,
                                    );
                                }
                                for y in rows {
                                    rows_done[y].store(true, Ordering::Release);
                                }
                            }
                            composited.fetch_add(local_pixels, Ordering::Relaxed);
                        }));
                        // Publish the failure *before* arriving so that any
                        // worker released by our arrival already sees it.
                        if compose.is_err() {
                            abort.store(true, Ordering::Release);
                        }
                        let n = arrived.fetch_add(1, Ordering::AcqRel) + 1;
                        if n == nprocs {
                            composite_end_us.store(clock.now_us(), Ordering::Relaxed);
                        }
                        if let Err(payload) = compose {
                            panics.lock().push((p, panic_message(payload.as_ref())));
                            return;
                        }
                        // Barrier wait. Terminates by construction (every
                        // worker arrives); the watchdog is a pure backstop.
                        let barrier_start = if collect { clock.now_us() } else { 0 };
                        let mut spins = 0u32;
                        while arrived.load(Ordering::Acquire) < nprocs {
                            spins = spins.wrapping_add(1);
                            if spins.is_multiple_of(1024) {
                                if let Some(limit) = watchdog {
                                    if clock.elapsed() >= limit {
                                        return;
                                    }
                                }
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                        if collect {
                            wlog.record(
                                SpanKind::Barrier,
                                barrier_start,
                                clock.now_us(),
                                nprocs as u32,
                                0,
                            );
                        }
                        if abort.load(Ordering::Acquire) {
                            // A sibling died: its rows may be torn, so a
                            // tile warp would read garbage. Skip it — the
                            // resolution below re-warps serially or errors.
                            return;
                        }

                        // Warp phase: static tiles; all compositing is done.
                        // SAFETY: every worker passed the barrier, so no row
                        // is being mutated any more.
                        let warp = catch_unwind(AssertUnwindSafe(|| {
                            let mut tracer = NullTracer;
                            let inter_ref = unsafe { shared.image() };
                            for (i, tile) in tiles.iter().enumerate() {
                                let tile_start = if collect { clock.now_us() } else { 0 };
                                // Tiles are disjoint rectangles, so final-image
                                // writes never collide.
                                warp_tile(inter_ref, fact, shared_out, *tile, &mut tracer);
                                if collect {
                                    wlog.record(
                                        SpanKind::Warp,
                                        tile_start,
                                        clock.now_us(),
                                        i as u32,
                                        tiles.len() as u32,
                                    );
                                }
                            }
                        }));
                        if let Err(payload) = warp {
                            panics.lock().push((p, panic_message(payload.as_ref())));
                        }
                    });
                }
            })
            .expect("worker panics are contained via catch_unwind");
        }
        let total_us = clock.now_us();
        let composite_us = composite_end_us.load(Ordering::Relaxed);
        stats.composite_secs = us_to_secs(composite_us);
        stats.warp_secs = us_to_secs(total_us.saturating_sub(composite_us));
        stats.steals = steals.load(Ordering::Relaxed);
        stats.composited_pixels = composited.load(Ordering::Relaxed);

        // Resolve the frame: repair, typed error, or clean completion.
        let worker_panics = std::mem::take(&mut *panics.lock());
        let lost: Vec<usize> = (0..h)
            .filter(|&y| !rows_done[y].load(Ordering::Acquire))
            .collect();

        if !worker_panics.is_empty() {
            stats.worker_panics = worker_panics.len() as u64;
            if !self.cfg.recover_panics {
                let (worker, message) = worker_panics[0].clone();
                return Err(Error::WorkerPanicked { worker, message });
            }
            stats.degraded = true;
            stats.repaired_rows = lost.len() as u64;
            let repair_start = clock.now_us();
            let mut tracer = NullTracer;
            // Re-composite each lost row; per row the slice order matches
            // the worker loop, so the repair is bit-identical.
            for &y in &lost {
                inter.clear_row(y);
                let mut row = inter.row_view(y);
                for m in 0..fact.slice_count() {
                    let k = fact.slice_for_step(m);
                    composite_scanline_slice_src(rle, &fact, &mut row, k, &opts, &mut tracer);
                }
            }
            // The tile warp was skipped on abort; redo it serially over the
            // now-complete intermediate image.
            warp_full(&*inter, &fact, &mut out, &mut tracer);
            if collect {
                driver.record(
                    SpanKind::Repair,
                    repair_start,
                    clock.now_us(),
                    lost.len() as u32,
                    stats.worker_panics as u32,
                );
            }
        } else if !lost.is_empty() {
            // Lost work without a panic (e.g. a truncated queue): the warp
            // already ran over incomplete rows, so the image cannot be
            // trusted — surface the first missing row.
            let row = lost[0];
            let holder = match row_claim[row].load(Ordering::Relaxed) {
                UNCLAIMED => None,
                w => Some(w),
            };
            return Err(Error::Stalled {
                row,
                holder,
                waited_ms: clock.elapsed().as_millis() as u64,
            });
        }
        let final_chunk_rows = min_chunk.load(Ordering::Relaxed);
        self.last_telemetry = Some(telem::finish_frame(
            "old",
            &clock,
            driver,
            logs,
            &stats,
            |m| {
                m.set_gauge("old.final_chunk_rows", final_chunk_rows as f64);
                m.set_gauge("core.pinned", pins.pinned() as f64);
                m.set_gauge("core.numa_node", pins.max_numa_node() as f64);
            },
        ));
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_render::SerialRenderer;
    use swr_volume::{classify, Phantom};

    fn scene() -> (EncodedVolume, ViewSpec) {
        let vol = Phantom::MriBrain.generate([24, 24, 16], 11);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        (
            EncodedVolume::encode(&c),
            ViewSpec::new([24, 24, 16]).rotate_y(0.5).rotate_x(0.2),
        )
    }

    #[test]
    fn matches_serial_bit_exactly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for procs in [1, 2, 3, 5] {
            let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(procs));
            let (img, stats) = r.render_with_stats(&enc, &view);
            assert_eq!(img, serial, "procs = {procs}");
            assert!(stats.composited_pixels > 0);
        }
    }

    #[test]
    fn stealing_can_be_disabled() {
        let (enc, view) = scene();
        let cfg = ParallelConfig {
            steal: false,
            ..ParallelConfig::with_procs(3)
        };
        let mut r = OldParallelRenderer::new(cfg);
        let (img, stats) = r.render_with_stats(&enc, &view);
        assert_eq!(stats.steals, 0);
        assert_eq!(img, SerialRenderer::new().render(&enc, &view));
    }

    #[test]
    fn buffer_reuse_across_frames_and_views() {
        let (enc, view) = scene();
        let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(2));
        let a = r.render(&enc, &view);
        let b = r.render(&enc, &view);
        assert_eq!(a, b);
        let view2 = ViewSpec::new([24, 24, 16]).rotate_y(1.9);
        let c = r.render(&enc, &view2);
        assert_eq!(c, SerialRenderer::new().render(&enc, &view2));
    }

    #[test]
    fn tiny_tiles_and_chunks_still_correct() {
        let (enc, view) = scene();
        let cfg = ParallelConfig {
            chunk_rows: 1,
            tile_size: 3,
            ..ParallelConfig::with_procs(4)
        };
        let mut r = OldParallelRenderer::new(cfg);
        assert_eq!(
            r.render(&enc, &view),
            SerialRenderer::new().render(&enc, &view)
        );
    }

    #[test]
    fn telemetry_covers_both_phases_per_worker() {
        let (enc, view) = scene();
        let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(3));
        let (_, stats) = r.render_with_stats(&enc, &view);
        let t = r.last_telemetry.as_ref().expect("telemetry after a frame");
        assert_eq!(t.label, "old");
        assert_eq!(t.workers.len(), 4, "driver lane + 3 workers");
        assert_eq!(
            t.metrics.counter("stats.composited_pixels"),
            stats.composited_pixels
        );
        if cfg!(feature = "telemetry") {
            // Driver partitioned; every worker hit the barrier exactly once.
            // (A worker can record zero composite spans if thieves drained
            // its queue before it started, so only the totals are certain.)
            assert_eq!(t.workers[0].kind_count(SpanKind::Partition), 1);
            for w in &t.workers[1..] {
                assert_eq!(w.kind_count(SpanKind::Barrier), 1, "worker {}", w.worker);
            }
            assert!(t.span_count(SpanKind::Composite) > 0);
            assert!(t.span_count(SpanKind::Warp) > 0);
            // Steal marks never outnumber the counted steals.
            assert!(t.span_count(SpanKind::Steal) as u64 <= stats.steals);
        }
    }

    fn queues_from(chunks: Vec<Vec<Range<usize>>>) -> Vec<StealQueue> {
        chunks
            .into_iter()
            .map(|v| CachePadded::new(Mutex::new(v.into())))
            .collect()
    }

    #[test]
    fn steal_from_drained_victim_halves_the_chunk() {
        // Victim holds a single 8-row chunk: below `nprocs` (= 2 queues)
        // chunks remain after the pop, so the thief gets the back half and
        // the victim keeps the front half.
        let queues = queues_from(vec![vec![], vec![0..8]]);
        let steals = AtomicU64::new(0);
        let adapt = AtomicU64::new(8);
        let (r, victim) =
            pop_or_steal(0, &queues, true, &steals, Some(&adapt)).expect("steal succeeds");
        assert_eq!(r, 4..8);
        assert_eq!(victim, Some(1));
        assert_eq!(queues[1].lock().front().cloned(), Some(0..4));
        assert_eq!(adapt.load(Ordering::Relaxed), 4);
        assert_eq!(steals.load(Ordering::Relaxed), 1);
        // Stealing again halves again: 0..4 → thief takes 2..4.
        let (r, _) = pop_or_steal(0, &queues, true, &steals, Some(&adapt)).expect("second steal");
        assert_eq!(r, 2..4);
        assert_eq!(adapt.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn steal_from_full_victim_takes_a_whole_chunk() {
        // Two chunks remain after the pop — not below `nprocs` (= 2), so no
        // halving happens.
        let queues = queues_from(vec![vec![], vec![0..4, 4..8, 8..12]]);
        let steals = AtomicU64::new(0);
        let adapt = AtomicU64::new(4);
        let (r, _) = pop_or_steal(0, &queues, true, &steals, Some(&adapt)).expect("steal");
        assert_eq!(r, 8..12, "back chunk stolen whole");
        assert_eq!(queues[1].lock().len(), 2);
        assert_eq!(adapt.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_row_chunks_are_never_split() {
        let queues = queues_from(vec![vec![], vec![5..6]]);
        let steals = AtomicU64::new(0);
        let adapt = AtomicU64::new(7);
        let (r, _) = pop_or_steal(0, &queues, true, &steals, Some(&adapt)).expect("steal");
        assert_eq!(r, 5..6);
        assert!(queues[1].lock().is_empty());
        assert_eq!(adapt.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn own_chunks_pop_without_adaptation() {
        let queues = queues_from(vec![vec![0..4], vec![]]);
        let steals = AtomicU64::new(0);
        let adapt = AtomicU64::new(4);
        let (r, victim) = pop_or_steal(0, &queues, true, &steals, Some(&adapt)).expect("own work");
        assert_eq!(r, 0..4);
        assert_eq!(victim, None);
        assert_eq!(steals.load(Ordering::Relaxed), 0);
        assert_eq!(adapt.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn final_chunk_rows_gauge_is_recorded() {
        let (enc, view) = scene();
        let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(3));
        let (_, _) = r.render_with_stats(&enc, &view);
        let t = r.last_telemetry.as_ref().expect("telemetry after a frame");
        let g = t
            .metrics
            .gauge("old.final_chunk_rows")
            .expect("gauge present");
        assert!(g >= 1.0, "gauge = {g}");
    }

    #[test]
    fn contained_worker_panic_repairs_bit_identically() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(3));
        r.fault = Some(FaultPlan::new(2).panic_at(1));
        let (img, stats) = r.try_render_with_stats(&enc, &view).expect("recovered");
        assert_eq!(img, serial, "repaired frame must match serial bit-exactly");
        assert_eq!(stats.worker_panics, 1);
        assert!(stats.degraded);
    }
}
