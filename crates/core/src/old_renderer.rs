//! The *old* parallel shear-warp renderer (§3.1), native threaded execution.
//!
//! Compositing: interleaved chunks of intermediate-image scanlines in
//! per-processor queues, with dynamic stealing from the back of the
//! fullest victim. A global barrier separates the phases. Warp: square
//! tiles of the final image, statically assigned round-robin (no stealing —
//! "there is little computation in the warp phase").

use crate::partition::{interleaved_chunks, make_tiles};
use crate::{ParallelConfig, RenderStats};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use swr_geom::{Factorization, ViewSpec};
use swr_render::{
    composite_scanline_slice, warp_tile, CompositeOpts, FinalImage, IntermediateImage,
    NullTracer, SharedFinal, SharedIntermediate,
};
use swr_volume::EncodedVolume;

/// Pops the caller's queue, or steals from the back of the fullest victim.
pub(crate) fn pop_or_steal(
    me: usize,
    queues: &[Mutex<VecDeque<Range<usize>>>],
    steal: bool,
    steals: &AtomicU64,
) -> Option<Range<usize>> {
    if let Some(r) = queues[me].lock().pop_front() {
        return Some(r);
    }
    if !steal {
        return None;
    }
    loop {
        // Victim selection: the queue with the most remaining chunks.
        let mut best: Option<(usize, usize)> = None;
        for (v, q) in queues.iter().enumerate() {
            if v == me {
                continue;
            }
            let len = q.lock().len();
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((v, len));
            }
        }
        let (v, _) = best?;
        if let Some(r) = queues[v].lock().pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(r);
        }
        // Raced with the victim finishing its queue; rescan.
    }
}

/// The old parallel renderer.
#[derive(Debug, Default)]
pub struct OldParallelRenderer {
    /// Configuration (processor count, chunk/tile sizes, stealing).
    pub cfg: ParallelConfig,
    /// Compositing options (early termination, depth cueing).
    pub composite_opts: CompositeOpts,
    inter: Option<IntermediateImage>,
}

impl OldParallelRenderer {
    /// Creates a renderer with the given configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        OldParallelRenderer { cfg, ..Default::default() }
    }

    /// Renders one frame.
    pub fn render(&mut self, enc: &EncodedVolume, view: &ViewSpec) -> FinalImage {
        self.render_with_stats(enc, view).0
    }

    /// Renders one frame, returning execution statistics.
    pub fn render_with_stats(
        &mut self,
        enc: &EncodedVolume,
        view: &ViewSpec,
    ) -> (FinalImage, RenderStats) {
        let fact = Factorization::from_view(view);
        let rle = enc.for_axis(fact.principal);
        let nprocs = self.cfg.nprocs.max(1);

        // Reuse the intermediate buffer across frames.
        let (w, h) = (fact.inter_w, fact.inter_h);
        let inter = match &mut self.inter {
            Some(img) if img.width() == w && img.height() == h => {
                img.clear();
                self.inter.as_mut().expect("checked above")
            }
            slot => {
                *slot = Some(IntermediateImage::new(w, h));
                slot.as_mut().expect("just set")
            }
        };

        // The old algorithm "blindly composites the intermediate image from
        // the very beginning to the end": chunks cover every scanline.
        let chunk_rows = self.cfg.effective_chunk_rows(h);
        let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
            interleaved_chunks(0..h, chunk_rows, nprocs)
                .into_iter()
                .map(|v| Mutex::new(v.into()))
                .collect();
        let tile_lists = make_tiles(fact.final_w, fact.final_h, self.cfg.tile_size, nprocs);

        let mut out = FinalImage::new(fact.final_w, fact.final_h);
        let mut stats = RenderStats::default();
        let steals = AtomicU64::new(0);
        let composited = AtomicU64::new(0);
        let barrier = Barrier::new(nprocs);
        let composite_secs = Mutex::new(0f64);
        let opts = self.composite_opts;
        let t0 = std::time::Instant::now();
        {
            let shared = SharedIntermediate::new(inter);
            let shared_out = SharedFinal::new(&mut out);
            let fact = &fact;
            crossbeam::scope(|s| {
                #[allow(clippy::needless_range_loop)]
                for p in 0..nprocs {
                    let queues = &queues;
                    let steals = &steals;
                    let composited = &composited;
                    let barrier = &barrier;
                    let shared = &shared;
                    let shared_out = &shared_out;
                    let tiles = &tile_lists[p];
                    let composite_secs = &composite_secs;
                    let steal = self.cfg.steal;
                    s.spawn(move |_| {
                        let mut tracer = NullTracer;
                        let mut local_pixels = 0u64;
                        while let Some(rows) = pop_or_steal(p, queues, steal, steals) {
                            // Slice-outer traversal within the chunk keeps
                            // the volume streaming in storage order.
                            for m in 0..fact.slice_count() {
                                let k = fact.slice_for_step(m);
                                for y in rows.clone() {
                                    // SAFETY: each scanline belongs to exactly
                                    // one chunk and each chunk is popped once.
                                    let mut row = unsafe { shared.row_view(y) };
                                    let st = composite_scanline_slice(
                                        rle, fact, &mut row, k, &opts, &mut tracer,
                                    );
                                    local_pixels += st.composited;
                                }
                            }
                        }
                        composited.fetch_add(local_pixels, Ordering::Relaxed);
                        if barrier.wait().is_leader() {
                            *composite_secs.lock() = t0.elapsed().as_secs_f64();
                        }

                        // Warp phase: static tiles; all compositing is done.
                        // SAFETY: every worker passed the barrier, so no row
                        // is being mutated any more.
                        let inter_ref = unsafe { shared.image() };
                        for tile in tiles {
                            // Tiles are disjoint rectangles, so final-image
                            // writes never collide.
                            warp_tile(inter_ref, fact, shared_out, *tile, &mut tracer);
                        }
                    });
                }
            })
            .expect("render workers must not panic");
        }
        let total = t0.elapsed().as_secs_f64();
        stats.composite_secs = *composite_secs.lock();
        stats.warp_secs = total - stats.composite_secs;
        stats.steals = steals.load(Ordering::Relaxed);
        stats.composited_pixels = composited.load(Ordering::Relaxed);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_render::SerialRenderer;
    use swr_volume::{classify, Phantom};

    fn scene() -> (EncodedVolume, ViewSpec) {
        let vol = Phantom::MriBrain.generate([24, 24, 16], 11);
        let c = classify(&vol, &Phantom::MriBrain.default_transfer());
        (EncodedVolume::encode(&c), ViewSpec::new([24, 24, 16]).rotate_y(0.5).rotate_x(0.2))
    }

    #[test]
    fn matches_serial_bit_exactly() {
        let (enc, view) = scene();
        let serial = SerialRenderer::new().render(&enc, &view);
        for procs in [1, 2, 3, 5] {
            let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(procs));
            let (img, stats) = r.render_with_stats(&enc, &view);
            assert_eq!(img, serial, "procs = {procs}");
            assert!(stats.composited_pixels > 0);
        }
    }

    #[test]
    fn stealing_can_be_disabled() {
        let (enc, view) = scene();
        let cfg = ParallelConfig { steal: false, ..ParallelConfig::with_procs(3) };
        let mut r = OldParallelRenderer::new(cfg);
        let (img, stats) = r.render_with_stats(&enc, &view);
        assert_eq!(stats.steals, 0);
        assert_eq!(img, SerialRenderer::new().render(&enc, &view));
    }

    #[test]
    fn buffer_reuse_across_frames_and_views() {
        let (enc, view) = scene();
        let mut r = OldParallelRenderer::new(ParallelConfig::with_procs(2));
        let a = r.render(&enc, &view);
        let b = r.render(&enc, &view);
        assert_eq!(a, b);
        let view2 = ViewSpec::new([24, 24, 16]).rotate_y(1.9);
        let c = r.render(&enc, &view2);
        assert_eq!(c, SerialRenderer::new().render(&enc, &view2));
    }

    #[test]
    fn tiny_tiles_and_chunks_still_correct() {
        let (enc, view) = scene();
        let cfg = ParallelConfig {
            chunk_rows: 1,
            tile_size: 3,
            ..ParallelConfig::with_procs(4)
        };
        let mut r = OldParallelRenderer::new(cfg);
        assert_eq!(r.render(&enc, &view), SerialRenderer::new().render(&enc, &view));
    }
}
