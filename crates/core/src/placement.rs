//! Worker thread placement: CPU pinning policies for the parallel
//! renderers' pools.
//!
//! The paper's machines (DASH, Challenge) schedule one process per
//! processor for the whole run, so a worker's pages — faulted in by
//! first-touch during band zeroing — stay local to the processor that
//! composites them. A modern kernel migrates unpinned threads freely,
//! which silently breaks that first-touch contract. [`Placement`] restores
//! it: each pool worker pins itself to one CPU before touching any band
//! memory, so the per-scanline partition and the `AnimationPipeline` band
//! ownership stay aligned with the pages the worker faulted in.
//!
//! Policies:
//!
//! * **compact** — worker `p` → CPU `p % ncpus`: fills one socket (and its
//!   memory domain) before spilling to the next; best cache sharing.
//! * **scatter** — worker `p` → CPU `(p * stride) % ncpus`: spreads workers
//!   across the topology for maximum aggregate memory bandwidth.
//! * **none** — leave scheduling to the kernel (the default).
//!
//! Pinning uses the raw `sched_setaffinity(2)` syscall bound directly
//! (the build has no libc crate; same vendored-symbol style as the
//! `signal(2)` shutdown handler in `swr-serve`). On non-Linux targets, or
//! when the syscall fails (unprivileged container, cpuset restrictions),
//! pinning degrades to a recorded no-op — never an error.

use std::str::FromStr;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A thread-placement policy for pool workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// No pinning: the kernel schedules workers freely.
    #[default]
    None,
    /// Worker `p` pins to CPU `p % ncpus` (fill cores in order).
    Compact,
    /// Worker `p` pins to CPU `(p * stride) % ncpus` (spread across the
    /// topology; stride is `ncpus / nprocs`, at least 1).
    Scatter,
}

impl Placement {
    /// Reads the policy from the `SWR_PIN` environment variable
    /// (`compact` / `scatter` / `none`); unset or unparsable means
    /// [`Placement::None`].
    pub fn from_env() -> Self {
        std::env::var("SWR_PIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    }

    /// Stable lowercase name (CLI flag value / metrics label).
    pub fn name(self) -> &'static str {
        match self {
            Placement::None => "none",
            Placement::Compact => "compact",
            Placement::Scatter => "scatter",
        }
    }

    /// The CPU worker `p` of `nprocs` should pin to under this policy, or
    /// `None` when the policy is [`Placement::None`].
    pub fn cpu_for(self, worker: usize, nprocs: usize, ncpus: usize) -> Option<usize> {
        if ncpus == 0 {
            return None;
        }
        match self {
            Placement::None => None,
            Placement::Compact => Some(worker % ncpus),
            Placement::Scatter => {
                let stride = (ncpus / nprocs.max(1)).max(1);
                Some((worker * stride) % ncpus)
            }
        }
    }
}

impl FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "off" | "" => Ok(Placement::None),
            "compact" => Ok(Placement::Compact),
            "scatter" => Ok(Placement::Scatter),
            other => Err(format!(
                "unknown placement {other:?} (expected compact, scatter, or none)"
            )),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What pinning a worker actually achieved, aggregated per pool/frame and
/// exported as the `core.pinned` / `core.numa_node` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinOutcome {
    /// Whether `sched_setaffinity` succeeded for this worker.
    pub pinned: bool,
    /// The CPU requested (policy target), if the policy pins at all.
    pub cpu: Option<usize>,
    /// NUMA node of the CPU the thread runs on after pinning, when the
    /// topology is readable (`/sys/devices/system/node`); `None` otherwise.
    pub numa_node: Option<u32>,
}

/// Shared tally of pin outcomes across one pool's workers; cheap enough to
/// update once per worker startup and read once per frame for the gauges.
#[derive(Debug)]
pub struct PinLedger {
    /// Workers successfully pinned.
    pinned: AtomicU64,
    /// Workers that requested pinning (policy != none).
    requested: AtomicU64,
    /// Highest NUMA node observed, or -1 when unknown.
    max_node: AtomicI64,
}

impl Default for PinLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl PinLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        PinLedger {
            pinned: AtomicU64::new(0),
            requested: AtomicU64::new(0),
            max_node: AtomicI64::new(-1),
        }
    }

    /// Records one worker's outcome.
    pub fn record(&self, outcome: PinOutcome) {
        if outcome.cpu.is_some() {
            self.requested.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.pinned {
            self.pinned.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(node) = outcome.numa_node {
            self.max_node.fetch_max(node as i64, Ordering::Relaxed);
        }
    }

    /// Workers successfully pinned.
    pub fn pinned(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Workers whose policy requested pinning.
    pub fn requested(&self) -> u64 {
        self.requested.load(Ordering::Relaxed)
    }

    /// Highest NUMA node any pinned worker landed on, or -1 when the
    /// topology is unknown (single-node hosts report 0).
    pub fn max_numa_node(&self) -> i64 {
        self.max_node.load(Ordering::Relaxed)
    }
}

/// Number of CPUs available to this process (used to derive pin targets
/// and the bench oversubscription flag).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the calling thread per `placement`, returning what was achieved.
/// Never fails: an unpinnable environment yields `pinned: false`.
pub fn pin_current_thread(placement: Placement, worker: usize, nprocs: usize) -> PinOutcome {
    let ncpus = host_cpus();
    let Some(cpu) = placement.cpu_for(worker, nprocs, ncpus) else {
        return PinOutcome::default();
    };
    let pinned = sys::set_affinity(cpu);
    PinOutcome {
        pinned,
        cpu: Some(cpu),
        numa_node: if pinned { sys::numa_node_of(cpu) } else { None },
    }
}

#[cfg(target_os = "linux")]
mod sys {
    /// Room for 1024 CPUs, the kernel's default CPU_SETSIZE.
    const MASK_WORDS: usize = 16;

    // The build has no libc crate; bind the affinity call directly. On
    // every Linux target `pid_t` is i32 and the glibc/musl wrapper takes
    // (pid, cpusetsize, mask); pid 0 means the calling thread.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Pins the calling thread to `cpu`. Returns success; EPERM/EINVAL in
    /// restricted containers simply reports false.
    pub fn set_affinity(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: the mask buffer outlives the call and the size argument
        // matches its length in bytes; the syscall only reads the mask.
        let rc = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
        rc == 0
    }

    /// NUMA node owning `cpu`, from the sysfs topology (`node*/cpulist`).
    /// `None` when sysfs is unreadable (minimal containers).
    pub fn numa_node_of(cpu: usize) -> Option<u32> {
        let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(num) = name.strip_prefix("node") else {
                continue;
            };
            let Ok(node) = num.parse::<u32>() else {
                continue;
            };
            let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                continue;
            };
            if cpulist_contains(list.trim(), cpu) {
                return Some(node);
            }
        }
        None
    }

    /// Parses a kernel cpulist ("0-3,8,10-11") and tests membership.
    fn cpulist_contains(list: &str, cpu: usize) -> bool {
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let hit = match part.split_once('-') {
                Some((lo, hi)) => match (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    (Ok(lo), Ok(hi)) => lo <= cpu && cpu <= hi,
                    _ => false,
                },
                None => part.parse::<usize>().map(|v| v == cpu).unwrap_or(false),
            };
            if hit {
                return true;
            }
        }
        false
    }

    #[cfg(test)]
    mod tests {
        use super::cpulist_contains;

        #[test]
        fn cpulist_membership_parses_ranges_and_singletons() {
            assert!(cpulist_contains("0-3,8,10-11", 2));
            assert!(cpulist_contains("0-3,8,10-11", 8));
            assert!(cpulist_contains("0-3,8,10-11", 11));
            assert!(!cpulist_contains("0-3,8,10-11", 9));
            assert!(cpulist_contains("0", 0));
            assert!(!cpulist_contains("", 0));
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    /// Pinning is Linux-only; elsewhere it is a recorded no-op.
    pub fn set_affinity(_cpu: usize) -> bool {
        false
    }

    pub fn numa_node_of(_cpu: usize) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parsing_round_trips_and_rejects_junk() {
        for p in [Placement::None, Placement::Compact, Placement::Scatter] {
            assert_eq!(p.name().parse::<Placement>().unwrap(), p);
        }
        assert_eq!("OFF".parse::<Placement>().unwrap(), Placement::None);
        assert!("threads".parse::<Placement>().is_err());
    }

    #[test]
    fn cpu_targets_follow_the_policy_shape() {
        assert_eq!(Placement::None.cpu_for(3, 4, 8), None);
        assert_eq!(Placement::Compact.cpu_for(3, 4, 8), Some(3));
        assert_eq!(Placement::Compact.cpu_for(9, 4, 8), Some(1));
        // Scatter with 2 workers on 8 CPUs strides by 4.
        assert_eq!(Placement::Scatter.cpu_for(0, 2, 8), Some(0));
        assert_eq!(Placement::Scatter.cpu_for(1, 2, 8), Some(4));
        // More workers than CPUs degenerates to modulo, never panics.
        assert_eq!(Placement::Scatter.cpu_for(5, 16, 2), Some(1));
        assert_eq!(Placement::Compact.cpu_for(5, 16, 0), None);
    }

    #[test]
    fn pinning_is_a_recorded_no_op_when_unavailable() {
        // Whatever the host allows, the call must not fail or panic, and
        // the outcome must be internally consistent.
        let out = pin_current_thread(Placement::Compact, 0, 1);
        assert_eq!(out.cpu, Some(0));
        if !out.pinned {
            assert_eq!(out.numa_node, None);
        }
        let none = pin_current_thread(Placement::None, 0, 1);
        assert_eq!(none, PinOutcome::default());
    }

    #[test]
    fn ledger_tallies_outcomes() {
        let ledger = PinLedger::new();
        ledger.record(PinOutcome {
            pinned: true,
            cpu: Some(0),
            numa_node: Some(0),
        });
        ledger.record(PinOutcome {
            pinned: false,
            cpu: Some(1),
            numa_node: None,
        });
        ledger.record(PinOutcome::default()); // policy none
        assert_eq!(ledger.requested(), 2);
        assert_eq!(ledger.pinned(), 1);
        assert_eq!(ledger.max_numa_node(), 0);
        let empty = PinLedger::new();
        assert_eq!(empty.max_numa_node(), -1);
    }
}
