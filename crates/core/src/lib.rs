//! The paper's parallel shear-warp renderers.
//!
//! Two complete parallel algorithms are implemented, exactly as contrasted in
//! the paper:
//!
//! * **Old** ([`OldParallelRenderer`], §3.1): the compositing phase
//!   partitions the intermediate image into small *interleaved chunks* of
//!   scanlines, assigned round-robin, with dynamic task stealing; a global
//!   barrier separates it from the warp phase, which partitions the *final*
//!   image into square tiles assigned round-robin. Because a processor warps
//!   pixels it did not composite, the intermediate image is re-communicated
//!   between phases — the true-sharing bottleneck the paper measures.
//!
//! * **New** ([`NewParallelRenderer`], §4): each processor gets one
//!   *contiguous* block of intermediate-image scanlines, sized from a
//!   per-scanline **work profile** collected every *k* frames (§4.2), turned
//!   into a cumulative distribution with a parallel prefix sum and split by
//!   equal area with binary search (§4.3), augmented with chunk-granularity
//!   stealing (§4.4). The warp reuses the *same* partition (§4.5): each
//!   processor warps exactly the final-image pixels whose inverse-mapped row
//!   falls in its band, so it reads (almost only) what it just composited,
//!   the inter-phase barrier disappears (replaced by per-row completion
//!   flags / task dependencies), and write-sharing on the final image is
//!   eliminated.
//!
//! Both renderers come in two execution modes sharing the same inner loops:
//! *native* (real threads, used for correctness — all renderers produce
//! bit-identical images — and wall-clock measurements) and *capture*
//! ([`capture`]), which records per-task memory traces for the
//! `swr-memsim` multiprocessor models that regenerate the paper's figures.
//!
//! # Example
//!
//! ```
//! use swr_core::{NewParallelRenderer, OldParallelRenderer, ParallelConfig};
//! use swr_geom::ViewSpec;
//! use swr_render::SerialRenderer;
//! use swr_volume::{classify, EncodedVolume, Phantom};
//!
//! let dims = Phantom::MriBrain.paper_dims(24);
//! let raw = Phantom::MriBrain.generate(dims, 42);
//! let enc = EncodedVolume::encode(&classify(&raw, &Phantom::MriBrain.default_transfer()));
//! let view = ViewSpec::new(dims).rotate_y(0.4);
//!
//! // All three renderers produce bit-identical images.
//! let serial = SerialRenderer::new().render(&enc, &view);
//! let old = OldParallelRenderer::new(ParallelConfig::with_procs(3)).render(&enc, &view);
//! let new = NewParallelRenderer::new(ParallelConfig::with_procs(3)).render(&enc, &view);
//! assert_eq!(serial, old);
//! assert_eq!(serial, new);
//! ```

pub mod capture;
pub mod new_renderer;
pub mod old_renderer;
pub mod partition;
pub mod prefix;

pub use capture::{capture_frame, CaptureConfig, CapturedFrame};
pub use new_renderer::NewParallelRenderer;
pub use old_renderer::OldParallelRenderer;
pub use partition::{balanced_contiguous, equal_contiguous, interleaved_chunks, make_tiles};
pub use prefix::{parallel_prefix_sum, prefix_sum};

/// Configuration shared by the parallel renderers.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of worker threads / simulated processors.
    pub nprocs: usize,
    /// Scanlines per compositing chunk: the old algorithm's task size, and
    /// the new algorithm's steal unit (§4.4). `0` selects a heuristic.
    pub chunk_rows: usize,
    /// Side length of the old algorithm's square warp tiles.
    pub tile_size: usize,
    /// Profile refresh period in frames (the paper's *k*, §4.2).
    pub profile_every: usize,
    /// Alternative staleness policy: re-profile once the viewpoint has
    /// rotated this many degrees since the last profiled frame (the paper
    /// chose *k* "such that profiles are computed once every 15 degrees of
    /// rotation"). When set, this takes precedence over `profile_every`.
    pub profile_every_degrees: Option<f64>,
    /// Enable dynamic task stealing in the compositing phase.
    pub steal: bool,
    /// New algorithm: composite only the occupied band of the intermediate
    /// image (§4.2's empty-region optimization).
    pub empty_region_clip: bool,
    /// New algorithm: use the work profile for partitioning; when `false`,
    /// fall back to equal-scanline-count contiguous partitions (ablation).
    pub profiled_partition: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            nprocs: 4,
            chunk_rows: 0,
            tile_size: 32,
            profile_every: 8,
            profile_every_degrees: None,
            steal: true,
            empty_region_clip: true,
            profiled_partition: true,
        }
    }
}

impl ParallelConfig {
    /// Config with a given processor count and defaults otherwise.
    pub fn with_procs(nprocs: usize) -> Self {
        ParallelConfig { nprocs, ..Default::default() }
    }

    /// Effective chunk size for an intermediate image of `rows` scanlines:
    /// the explicit setting, or a heuristic giving each processor several
    /// chunks to keep stealing granular without destroying locality.
    pub fn effective_chunk_rows(&self, rows: usize) -> usize {
        if self.chunk_rows > 0 {
            return self.chunk_rows;
        }
        (rows / (self.nprocs * 8)).clamp(1, 16)
    }
}

/// Per-frame statistics of a native parallel render.
#[derive(Debug, Clone, Default)]
pub struct RenderStats {
    /// Wall-clock seconds of the compositing phase (including partitioning).
    pub composite_secs: f64,
    /// Wall-clock seconds of the warp phase.
    pub warp_secs: f64,
    /// Chunks stolen by idle processors.
    pub steals: u64,
    /// Whether this frame collected a work profile.
    pub profiled: bool,
    /// Total pixels composited across processors.
    pub composited_pixels: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_heuristic_is_sane() {
        let cfg = ParallelConfig::with_procs(8);
        let c = cfg.effective_chunk_rows(512);
        assert!((1..=16).contains(&c));
        // Explicit setting wins.
        let cfg = ParallelConfig { chunk_rows: 3, ..cfg };
        assert_eq!(cfg.effective_chunk_rows(512), 3);
        // Tiny images still get at least one row per chunk.
        let cfg = ParallelConfig::with_procs(32);
        assert_eq!(cfg.effective_chunk_rows(8), 1);
    }
}
