//! The paper's parallel shear-warp renderers.
//!
//! Two complete parallel algorithms are implemented, exactly as contrasted in
//! the paper:
//!
//! * **Old** ([`OldParallelRenderer`], §3.1): the compositing phase
//!   partitions the intermediate image into small *interleaved chunks* of
//!   scanlines, assigned round-robin, with dynamic task stealing; a global
//!   barrier separates it from the warp phase, which partitions the *final*
//!   image into square tiles assigned round-robin. Because a processor warps
//!   pixels it did not composite, the intermediate image is re-communicated
//!   between phases — the true-sharing bottleneck the paper measures.
//!
//! * **New** ([`NewParallelRenderer`], §4): each processor gets one
//!   *contiguous* block of intermediate-image scanlines, sized from a
//!   per-scanline **work profile** collected every *k* frames (§4.2), turned
//!   into a cumulative distribution with a parallel prefix sum and split by
//!   equal area with binary search (§4.3), augmented with chunk-granularity
//!   stealing (§4.4). The warp reuses the *same* partition (§4.5): each
//!   processor warps exactly the final-image pixels whose inverse-mapped row
//!   falls in its band, so it reads (almost only) what it just composited,
//!   the inter-phase barrier disappears (replaced by per-row completion
//!   flags / task dependencies), and write-sharing on the final image is
//!   eliminated.
//!
//! Both renderers come in two execution modes sharing the same inner loops:
//! *native* (real threads, used for correctness — all renderers produce
//! bit-identical images — and wall-clock measurements) and *capture*
//! ([`capture`]), which records per-task memory traces for the
//! `swr-memsim` multiprocessor models that regenerate the paper's figures.
//!
//! # Failure model
//!
//! The renderers never hang and never return a torn image. Every fallible
//! entry point has a `try_*` form returning `Result<_, `[`enum@Error`]`>`;
//! the legacy panicking APIs are thin wrappers that panic with the error's
//! `Display` text.
//!
//! * **Validation** — [`ParallelConfig::try_validate`] and
//!   `ViewSpec::try_validate` reject degenerate inputs (`nprocs == 0`, zero
//!   tile size, singular model matrices) with
//!   [`Error::InvalidConfig`](swr_error::Error) /
//!   [`Error::InvalidView`](swr_error::Error) before any thread starts.
//! * **Worker-panic containment** — each worker runs its compositing and
//!   warp under `catch_unwind`. A panicking worker marks its rows failed and
//!   gets out of the way; survivors finish their own partitions (and, with
//!   stealing enabled, most of the failed worker's queue too). The frame
//!   then completes by serially re-compositing the lost scanlines and
//!   re-warping the affected bands — the result is **bit-identical** to an
//!   undisturbed render, with the degradation recorded in [`RenderStats`]
//!   (`worker_panics`, `repaired_rows`, `degraded`). Setting
//!   [`ParallelConfig::recover_panics`]` = false` turns the repair into a
//!   typed [`Error::WorkerPanicked`](swr_error::Error) instead.
//! * **Scheduler watchdog** — the new renderer's barrier-free warp waits on
//!   per-row completion flags. A waiter that observes every compositor
//!   retired while its row is still incomplete reports the lost row
//!   immediately; [`ParallelConfig::watchdog_timeout`] bounds the wait in
//!   all other cases. Lost work without a panic (e.g. a truncated queue)
//!   yields [`Error::Stalled`](swr_error::Error) naming the row and the
//!   worker that last claimed it — never an indefinite spin.
//! * **Fault injection** — [`fault::FaultPlan`] deterministically injects
//!   worker panics at the Nth compositing task or Nth warp band, corrupted
//!   or zeroed work profiles, and truncated steal queues, so the containment
//!   paths above are exercised by ordinary tests.
//!
//! The multi-frame [`AnimationPipeline`] keeps **two frames in flight** on a
//! persistent worker pool; the same failure model holds per frame. Panics in
//! either phase of either in-flight frame are contained and repaired when
//! that frame is resolved (the other frame is unaffected), stalls surface as
//! the same typed [`Error::Stalled`](swr_error::Error), and the watchdog
//! measures each wait from its own start so a frame simply queued behind its
//! predecessor is never misreported as stalled.
//!
//! # Example
//!
//! ```
//! use swr_core::{NewParallelRenderer, OldParallelRenderer, ParallelConfig};
//! use swr_geom::ViewSpec;
//! use swr_render::SerialRenderer;
//! use swr_volume::{classify, EncodedVolume, Phantom};
//!
//! let dims = Phantom::MriBrain.paper_dims(24);
//! let raw = Phantom::MriBrain.generate(dims, 42);
//! let enc = EncodedVolume::encode(&classify(&raw, &Phantom::MriBrain.default_transfer()));
//! let view = ViewSpec::new(dims).rotate_y(0.4);
//!
//! // All three renderers produce bit-identical images.
//! let serial = SerialRenderer::new().render(&enc, &view);
//! let old = OldParallelRenderer::new(ParallelConfig::with_procs(3)).render(&enc, &view);
//! let new = NewParallelRenderer::new(ParallelConfig::with_procs(3)).render(&enc, &view);
//! assert_eq!(serial, old);
//! assert_eq!(serial, new);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod capture;
pub mod fault;
pub mod new_renderer;
pub mod old_renderer;
pub mod pad;
pub mod partition;
pub mod pipeline;
pub mod placement;
pub mod prefix;
pub(crate) mod telem;

pub use capture::{capture_frame, try_capture_frame, CaptureConfig, CapturedFrame};
pub use fault::FaultPlan;
pub use new_renderer::NewParallelRenderer;
pub use old_renderer::OldParallelRenderer;
pub use pad::CachePadded;
pub use partition::{balanced_contiguous, equal_contiguous, interleaved_chunks, make_tiles};
pub use pipeline::AnimationPipeline;
pub use placement::{host_cpus, pin_current_thread, PinLedger, PinOutcome, Placement};
pub use prefix::{parallel_prefix_sum, prefix_sum};
pub use swr_error::Error;
pub use swr_telemetry::{FrameTelemetry, Json, MetricsRegistry};

use std::time::Duration;

/// Configuration shared by the parallel renderers.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of worker threads / simulated processors.
    pub nprocs: usize,
    /// Scanlines per compositing chunk: the old algorithm's task size, and
    /// the new algorithm's steal unit (§4.4). `0` selects a heuristic.
    pub chunk_rows: usize,
    /// Side length of the old algorithm's square warp tiles.
    pub tile_size: usize,
    /// Profile refresh period in frames (the paper's *k*, §4.2).
    pub profile_every: usize,
    /// Alternative staleness policy: re-profile once the viewpoint has
    /// rotated this many degrees since the last profiled frame (the paper
    /// chose *k* "such that profiles are computed once every 15 degrees of
    /// rotation"). When set, this takes precedence over `profile_every`.
    pub profile_every_degrees: Option<f64>,
    /// Enable dynamic task stealing in the compositing phase.
    pub steal: bool,
    /// New algorithm: composite only the occupied band of the intermediate
    /// image (§4.2's empty-region optimization).
    pub empty_region_clip: bool,
    /// New algorithm: use the work profile for partitioning; when `false`,
    /// fall back to equal-scanline-count contiguous partitions (ablation).
    pub profiled_partition: bool,
    /// Upper bound on how long a worker may wait for a scanline completion
    /// flag before the scheduler is declared stalled
    /// ([`Error::Stalled`](swr_error::Error)). `None` disables the timeout;
    /// lost work is still detected immediately once all compositors retire.
    pub watchdog_timeout: Option<Duration>,
    /// When a worker panics: `true` completes the frame by serial repair of
    /// the lost scanlines (bit-identical output, degradation recorded in
    /// [`RenderStats`]); `false` surfaces
    /// [`Error::WorkerPanicked`](swr_error::Error) instead.
    pub recover_panics: bool,
    /// Thread-placement policy for pool workers: each worker pins itself
    /// to one CPU before touching band memory, keeping the first-touch
    /// pages local to the processor that composites them. The default
    /// reads the `SWR_PIN` environment variable (unset ⇒ no pinning), so
    /// pinning can be enabled without touching call sites.
    pub placement: Placement,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            nprocs: 4,
            chunk_rows: 0,
            tile_size: 32,
            profile_every: 8,
            profile_every_degrees: None,
            steal: true,
            empty_region_clip: true,
            profiled_partition: true,
            watchdog_timeout: Some(Duration::from_secs(10)),
            recover_panics: true,
            placement: Placement::from_env(),
        }
    }
}

impl ParallelConfig {
    /// Config with a given processor count and defaults otherwise.
    pub fn with_procs(nprocs: usize) -> Self {
        ParallelConfig {
            nprocs,
            ..Default::default()
        }
    }

    /// Checks the configuration, returning
    /// [`Error::InvalidConfig`](swr_error::Error) on degenerate settings.
    pub fn try_validate(&self) -> Result<(), Error> {
        let invalid = |reason: String| Err(Error::InvalidConfig { reason });
        if self.nprocs == 0 {
            return invalid("nprocs must be >= 1".into());
        }
        if self.tile_size == 0 {
            return invalid("tile_size must be >= 1".into());
        }
        if self.profile_every == 0 {
            return invalid("profile_every must be >= 1".into());
        }
        if let Some(deg) = self.profile_every_degrees {
            if !deg.is_finite() || deg <= 0.0 {
                return invalid(format!(
                    "profile_every_degrees must be finite and positive, got {deg}"
                ));
            }
        }
        if self.watchdog_timeout == Some(Duration::ZERO) {
            return invalid("watchdog timeout must be nonzero (use None to disable)".into());
        }
        Ok(())
    }

    /// Panicking form of [`ParallelConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Effective chunk size for an intermediate image of `rows` scanlines:
    /// the explicit setting, or a heuristic giving each processor several
    /// chunks to keep stealing granular without destroying locality.
    pub fn effective_chunk_rows(&self, rows: usize) -> usize {
        if self.chunk_rows > 0 {
            return self.chunk_rows;
        }
        (rows / (self.nprocs.max(1) * 8)).clamp(1, 16)
    }
}

/// Per-frame statistics of a native parallel render.
#[derive(Debug, Clone, Default)]
pub struct RenderStats {
    /// Wall-clock seconds of the compositing phase (including partitioning).
    pub composite_secs: f64,
    /// Wall-clock seconds of the warp phase.
    pub warp_secs: f64,
    /// Chunks stolen by idle processors.
    pub steals: u64,
    /// Whether this frame collected a work profile.
    pub profiled: bool,
    /// Total pixels composited across processors.
    pub composited_pixels: u64,
    /// Worker threads that panicked during this frame (contained).
    pub worker_panics: u64,
    /// Scanlines re-composited serially after a worker failure.
    pub repaired_rows: u64,
    /// Whether any part of this frame ran on the serial fallback path.
    pub degraded: bool,
    /// Clock tick (µs, frame-clock domain) at which the frame was fully
    /// resolved. Zero for renderers that do not pipeline frames; the
    /// animation pipeline stamps it so consumers can measure inter-frame
    /// delivery by *completion* gaps rather than sink-arrival gaps (which
    /// collapse to ~0 when back-pressure releases two buffered frames
    /// back-to-back).
    pub completion_us: u64,
}

impl RenderStats {
    /// Mirrors every field into a [`MetricsRegistry`]: seconds and flags as
    /// gauges, monotonic quantities as counters. The registry names are the
    /// stable export surface (`swrender --metrics`).
    pub fn fill_metrics(&self, m: &mut MetricsRegistry) {
        m.set_gauge("stats.composite_secs", self.composite_secs);
        m.set_gauge("stats.warp_secs", self.warp_secs);
        m.inc("stats.steals", self.steals);
        m.set_gauge("stats.profiled", f64::from(u8::from(self.profiled)));
        m.inc("stats.composited_pixels", self.composited_pixels);
        m.inc("stats.worker_panics", self.worker_panics);
        m.inc("stats.repaired_rows", self.repaired_rows);
        m.set_gauge("stats.degraded", f64::from(u8::from(self.degraded)));
    }

    /// Machine-readable form of the stats, round-trippable through
    /// [`RenderStats::from_json`].
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("composite_secs", Json::F64(self.composite_secs))
            .with("warp_secs", Json::F64(self.warp_secs))
            .with("steals", Json::U64(self.steals))
            .with("profiled", Json::Bool(self.profiled))
            .with("composited_pixels", Json::U64(self.composited_pixels))
            .with("worker_panics", Json::U64(self.worker_panics))
            .with("repaired_rows", Json::U64(self.repaired_rows))
            .with("degraded", Json::Bool(self.degraded))
            .with("completion_us", Json::U64(self.completion_us))
    }

    /// Parses the object produced by [`RenderStats::to_json`]. Missing keys
    /// default to zero/false; a non-object is an error.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.as_obj().is_none() {
            return Err("RenderStats: expected a JSON object".into());
        }
        let f = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        let b = |k: &str| matches!(v.get(k), Some(Json::Bool(true)));
        Ok(RenderStats {
            composite_secs: f("composite_secs"),
            warp_secs: f("warp_secs"),
            steals: u("steals"),
            profiled: b("profiled"),
            composited_pixels: u("composited_pixels"),
            worker_panics: u("worker_panics"),
            repaired_rows: u("repaired_rows"),
            degraded: b("degraded"),
            completion_us: u("completion_us"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_heuristic_is_sane() {
        let cfg = ParallelConfig::with_procs(8);
        let c = cfg.effective_chunk_rows(512);
        assert!((1..=16).contains(&c));
        // Explicit setting wins.
        let cfg = ParallelConfig {
            chunk_rows: 3,
            ..cfg
        };
        assert_eq!(cfg.effective_chunk_rows(512), 3);
        // Tiny images still get at least one row per chunk.
        let cfg = ParallelConfig::with_procs(32);
        assert_eq!(cfg.effective_chunk_rows(8), 1);
    }

    #[test]
    fn chunk_heuristic_survives_zero_procs() {
        // nprocs == 0 is rejected by try_validate, but the heuristic itself
        // must not divide by zero if called on an unvalidated config.
        let cfg = ParallelConfig::with_procs(0);
        assert_eq!(cfg.effective_chunk_rows(512), 16);
        assert_eq!(cfg.effective_chunk_rows(0), 1);
    }

    #[test]
    fn config_validation_types_each_degenerate_setting() {
        assert!(ParallelConfig::default().try_validate().is_ok());
        let bad = [
            ParallelConfig {
                nprocs: 0,
                ..Default::default()
            },
            ParallelConfig {
                tile_size: 0,
                ..Default::default()
            },
            ParallelConfig {
                profile_every: 0,
                ..Default::default()
            },
            ParallelConfig {
                profile_every_degrees: Some(0.0),
                ..Default::default()
            },
            ParallelConfig {
                profile_every_degrees: Some(f64::NAN),
                ..Default::default()
            },
            ParallelConfig {
                watchdog_timeout: Some(Duration::ZERO),
                ..Default::default()
            },
        ];
        for cfg in bad {
            let e = cfg.try_validate().expect_err("must be rejected");
            assert!(matches!(e, Error::InvalidConfig { .. }), "{e}");
            assert_eq!(e.exit_code(), 2);
        }
        // Disabling the watchdog entirely is allowed.
        let cfg = ParallelConfig {
            watchdog_timeout: None,
            ..Default::default()
        };
        assert!(cfg.try_validate().is_ok());
    }

    #[test]
    fn render_stats_round_trip_through_json() {
        let stats = RenderStats {
            composite_secs: 0.125,
            warp_secs: 0.0625,
            steals: 7,
            profiled: true,
            composited_pixels: 123_456,
            worker_panics: 1,
            repaired_rows: 42,
            degraded: true,
            completion_us: 987_654,
        };
        let text = stats.to_json().to_string();
        let back = RenderStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.composite_secs, stats.composite_secs);
        assert_eq!(back.warp_secs, stats.warp_secs);
        assert_eq!(back.steals, stats.steals);
        assert_eq!(back.profiled, stats.profiled);
        assert_eq!(back.composited_pixels, stats.composited_pixels);
        assert_eq!(back.worker_panics, stats.worker_panics);
        assert_eq!(back.repaired_rows, stats.repaired_rows);
        assert_eq!(back.degraded, stats.degraded);
        assert_eq!(back.completion_us, stats.completion_us);
        // Defaults fill in for absent keys; non-objects are rejected.
        assert!(RenderStats::from_json(&Json::parse("{}").unwrap()).is_ok());
        assert!(RenderStats::from_json(&Json::U64(3)).is_err());
    }

    #[test]
    fn stats_metrics_names_are_stable() {
        let mut m = MetricsRegistry::new();
        RenderStats {
            steals: 2,
            ..Default::default()
        }
        .fill_metrics(&mut m);
        assert_eq!(m.counter("stats.steals"), 2);
        assert!(m.gauge("stats.composite_secs").is_some());
        assert!(m.gauge("stats.degraded").is_some());
    }
}
