//! Service-wide observability: a shared [`MetricsRegistry`] behind a lock,
//! rolling latency windows, and the Prometheus exposition path.
//!
//! Every stage of the supervision ladder leaves a trace here — admission
//! sheds, retries, serial fallbacks, deadline misses, session restarts,
//! degradation level changes — so the whole ladder is visible through one
//! `{"op":"stats"}` request or a `{"op":"metrics"}` / `--expose` scrape.
//! Names are the stable ops surface:
//!
//! | metric                   | kind    | meaning                                   |
//! |--------------------------|---------|-------------------------------------------|
//! | `serve.sessions`         | gauge   | sessions currently open                   |
//! | `serve.degraded`         | gauge   | sessions below full quality               |
//! | `serve.budget_total`     | gauge   | configured global worker budget           |
//! | `serve.budget_in_use`    | gauge   | worker slots currently leased             |
//! | `serve.session.<id>.level`| gauge  | per-session ladder level (0/1/2), removed on close |
//! | `serve.util.w<p>`        | gauge   | last frame's busy %% for worker lane `p`  |
//! | `serve.requests`         | counter | render requests accepted off the wire     |
//! | `serve.frames`           | counter | frames delivered successfully             |
//! | `serve.quality.<q>`      | counter | frames delivered at quality `q`           |
//! | `serve.shed`             | counter | requests refused by admission control     |
//! | `serve.retries`          | counter | parallel retries after a render fault     |
//! | `serve.serial_fallbacks` | counter | requests completed on the serial rung     |
//! | `serve.deadline_missed`  | counter | requests that blew their deadline         |
//! | `serve.errors`           | counter | typed error responses sent                |
//! | `serve.session_restarts` | counter | supervised pipeline restarts after panics |
//! | `serve.faults_injected`  | counter | chaos faults armed via the wire           |
//! | `serve.flight_dumps`     | counter | flight-recorder forensics files written   |
//! | `serve.brick_evictions`  | counter | streamed-brick cache evictions (thrash)   |
//! | `serve.brick_resident_bytes` | gauge | bytes resident in the streamed-brick cache |
//! | `serve.scrapes`          | counter | metrics expositions served                |
//! | `serve.frame_latency_ms` | histogram | arrival → frame-response latency        |
//! | `serve.queue_wait_ms`    | histogram | arrival → dequeue wait                  |
//! | `serve.frame_steals`     | histogram | steals per delivered frame              |
//!
//! # Scrape semantics
//!
//! [`ServeMetrics::exposition`] never blocks a render on the scraper: the
//! registry snapshot is taken with a `try_lock`, and when a recording
//! thread holds the lock at that instant the scrape serves the last good
//! snapshot instead of waiting. Render-side operations only ever hold the
//! lock for a single counter/histogram update, so the snapshot is at most
//! one scrape interval stale and a slow scraper can never wedge the
//! supervision ladder. Each histogram observed through
//! [`ServeMetrics::observe`] also feeds a rolling window
//! ([`RollingHistogram`], rotated once per scrape) whose p50/p95/p99 export
//! as the `<name>_window` summary family — *recent* tails, not
//! process-lifetime averages.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use swr_telemetry::{metrics_json, prometheus_text, Histogram, Json, MetricsRegistry};
use swr_telemetry::{Correlation, RollingHistogram};

/// Rotation intervals (scrapes) a windowed histogram spans.
pub const WINDOW_SLOTS: usize = 8;

/// Cheaply clonable handle to the service's shared metrics registry.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    reg: Arc<Mutex<MetricsRegistry>>,
    windows: Arc<Mutex<BTreeMap<String, RollingHistogram>>>,
    snap: Arc<Mutex<Arc<MetricsRegistry>>>,
}

impl ServeMetrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to a counter.
    pub fn inc(&self, name: &str) {
        self.reg.lock().inc(name, 1);
    }

    /// Adds `by` to a counter.
    pub fn add(&self, name: &str, by: u64) {
        self.reg.lock().inc(name, by);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.reg.lock().set_gauge(name, v);
    }

    /// Drops a gauge (per-session gauges on session close).
    pub fn remove_gauge(&self, name: &str) {
        self.reg.lock().remove_gauge(name);
    }

    /// Adjusts a gauge by a delta (absent gauges start at zero).
    pub fn adjust_gauge(&self, name: &str, delta: f64) {
        let mut m = self.reg.lock();
        let v = m.gauge(name).unwrap_or(0.0) + delta;
        m.set_gauge(name, v);
    }

    /// Records a sample into the named histogram *and* its rolling window.
    pub fn observe(&self, name: &str, v: u64) {
        self.reg.lock().observe(name, v);
        self.windows
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| RollingHistogram::new(WINDOW_SLOTS))
            .observe(v);
    }

    /// Current counter value.
    pub fn counter(&self, name: &str) -> u64 {
        self.reg.lock().counter(name)
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.reg.lock().gauge(name)
    }

    /// A point-in-time copy of the whole registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.reg.lock().clone()
    }

    /// The merged rolling window for a histogram, if it has one.
    pub fn window(&self, name: &str) -> Option<Histogram> {
        self.windows.lock().get(name).map(RollingHistogram::merged)
    }

    /// The registry as the exporters' metrics JSON document.
    pub fn to_json(&self) -> Json {
        metrics_json(&self.reg.lock())
    }

    /// The Prometheus text exposition of the registry plus the rolling-
    /// window quantile summaries, then rotates the windows (one scrape =
    /// one window slot).
    ///
    /// Snapshot semantics: `try_lock` + last-good-snapshot fallback, so a
    /// scrape can never stall behind (or stall) a render holding the
    /// metrics lock — see the module docs.
    pub fn exposition(&self) -> String {
        self.inc("serve.scrapes");
        let snap: Arc<MetricsRegistry> = match self.reg.try_lock() {
            Some(g) => {
                let fresh = Arc::new(g.clone());
                drop(g);
                *self.snap.lock() = Arc::clone(&fresh);
                fresh
            }
            None => Arc::clone(&self.snap.lock()),
        };
        let merged: Vec<(String, Histogram)> = {
            let mut w = self.windows.lock();
            let merged = w
                .iter()
                .map(|(k, rh)| (k.clone(), rh.merged()))
                .collect::<Vec<_>>();
            for rh in w.values_mut() {
                rh.rotate();
            }
            merged
        };
        let windows: Vec<(&str, Histogram)> = merged
            .iter()
            .map(|(k, h)| (k.as_str(), h.clone()))
            .collect();
        prometheus_text(&snap, &windows)
    }
}

/// Builds the correlation tag a session stamps onto the pipeline.
pub fn correlate(session: u64, request: u64) -> Correlation {
    Correlation { session, request }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swr_telemetry::validate_exposition;

    #[test]
    fn gauges_adjust_relative_and_counters_accumulate() {
        let m = ServeMetrics::new();
        m.inc("serve.shed");
        m.add("serve.shed", 2);
        assert_eq!(m.counter("serve.shed"), 3);
        m.adjust_gauge("serve.sessions", 1.0);
        m.adjust_gauge("serve.sessions", 1.0);
        m.adjust_gauge("serve.sessions", -1.0);
        assert_eq!(m.gauge("serve.sessions"), Some(1.0));
        let json = m.to_json().to_string();
        assert!(json.contains("serve.shed"), "{json}");
        assert_eq!(m.snapshot().counter("serve.shed"), 3);
        m.remove_gauge("serve.sessions");
        assert_eq!(m.gauge("serve.sessions"), None);
    }

    #[test]
    fn exposition_is_valid_and_scrape_counter_is_monotone() {
        let m = ServeMetrics::new();
        m.inc("serve.frames");
        m.set_gauge("serve.sessions", 1.0);
        for v in [5u64, 12, 80, 400] {
            m.observe("serve.frame_latency_ms", v);
        }
        let a = m.exposition();
        let sa = validate_exposition(&a).expect("first scrape valid");
        let b = m.exposition();
        let sb = validate_exposition(&b).expect("second scrape valid");
        assert!(b.contains("swr_serve_frame_latency_ms_window{quantile=\"0.99\"}"));
        assert!(b.contains("swr_serve_frame_latency_ms_bucket{le=\"+Inf\"} 4"));
        let scrapes = "swr_serve_scrapes_total";
        assert!(sa.counters[scrapes] < sb.counters[scrapes]);
    }

    #[test]
    fn windows_rotate_out_old_samples_after_enough_scrapes() {
        let m = ServeMetrics::new();
        m.observe("serve.frame_latency_ms", 1_000_000);
        for _ in 0..WINDOW_SLOTS + 1 {
            let _ = m.exposition();
        }
        m.observe("serve.frame_latency_ms", 10);
        // The cumulative histogram remembers the spike; the window forgot.
        assert_eq!(
            m.snapshot()
                .histogram("serve.frame_latency_ms")
                .map(|h| h.count),
            Some(2)
        );
        let w = m.window("serve.frame_latency_ms").expect("window exists");
        assert_eq!(w.count, 1);
        assert_eq!(w.quantile(0.99), 10);
    }
}
