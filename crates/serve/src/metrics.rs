//! Service-wide observability: a shared [`MetricsRegistry`] behind a lock.
//!
//! Every stage of the supervision ladder leaves a trace here — admission
//! sheds, retries, serial fallbacks, deadline misses, session restarts,
//! degradation level changes — so the whole ladder is visible through one
//! `{"op":"stats"}` request. Names are the stable ops surface:
//!
//! | metric                   | kind    | meaning                                   |
//! |--------------------------|---------|-------------------------------------------|
//! | `serve.sessions`         | gauge   | sessions currently open                   |
//! | `serve.degraded`         | gauge   | sessions below full quality               |
//! | `serve.budget_total`     | gauge   | configured global worker budget           |
//! | `serve.budget_in_use`    | gauge   | worker slots currently leased             |
//! | `serve.requests`         | counter | render requests accepted off the wire     |
//! | `serve.frames`           | counter | frames delivered successfully             |
//! | `serve.shed`             | counter | requests refused by admission control     |
//! | `serve.retries`          | counter | parallel retries after a render fault     |
//! | `serve.serial_fallbacks` | counter | requests completed on the serial rung     |
//! | `serve.deadline_missed`  | counter | requests that blew their deadline         |
//! | `serve.errors`           | counter | typed error responses sent                |
//! | `serve.session_restarts` | counter | supervised pipeline restarts after panics |
//! | `serve.faults_injected`  | counter | chaos faults armed via the wire           |

use parking_lot::Mutex;
use std::sync::Arc;
use swr_telemetry::{metrics_json, Json, MetricsRegistry};

/// Cheaply clonable handle to the service's shared metrics registry.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics(Arc<Mutex<MetricsRegistry>>);

impl ServeMetrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to a counter.
    pub fn inc(&self, name: &str) {
        self.0.lock().inc(name, 1);
    }

    /// Adds `by` to a counter.
    pub fn add(&self, name: &str, by: u64) {
        self.0.lock().inc(name, by);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.0.lock().set_gauge(name, v);
    }

    /// Adjusts a gauge by a delta (absent gauges start at zero).
    pub fn adjust_gauge(&self, name: &str, delta: f64) {
        let mut m = self.0.lock();
        let v = m.gauge(name).unwrap_or(0.0) + delta;
        m.set_gauge(name, v);
    }

    /// Current counter value.
    pub fn counter(&self, name: &str) -> u64 {
        self.0.lock().counter(name)
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.0.lock().gauge(name)
    }

    /// A point-in-time copy of the whole registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.0.lock().clone()
    }

    /// The registry as the exporters' metrics JSON document.
    pub fn to_json(&self) -> Json {
        metrics_json(&self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_adjust_relative_and_counters_accumulate() {
        let m = ServeMetrics::new();
        m.inc("serve.shed");
        m.add("serve.shed", 2);
        assert_eq!(m.counter("serve.shed"), 3);
        m.adjust_gauge("serve.sessions", 1.0);
        m.adjust_gauge("serve.sessions", 1.0);
        m.adjust_gauge("serve.sessions", -1.0);
        assert_eq!(m.gauge("serve.sessions"), Some(1.0));
        let json = m.to_json().to_string();
        assert!(json.contains("serve.shed"), "{json}");
        assert_eq!(m.snapshot().counter("serve.shed"), 3);
    }
}
