//! `swr-serve`: a fault-isolated render service over the shear-warp
//! pipeline.
//!
//! The daemon speaks a line-delimited JSON protocol
//! ([`protocol`], `swr-serve/1`) over TCP. Each connection is one
//! *session*: a `hello` names the scene (served from a shared
//! [`VolumeCache`]) and the session gets its own
//! [`AnimationPipeline`](swr_core::AnimationPipeline) plus a serial
//! fallback renderer. Render requests then run under the supervision
//! policy in [`session`]:
//!
//! * **deadlines** — per-request millisecond budgets, enforced while
//!   queued and (via the scheduler watchdog) while rendering;
//! * **admission control** — a global [`WorkerBudget`] shared by every
//!   session, plus a bounded per-session request queue; saturation is
//!   answered with a typed `overloaded` shed, never unbounded queueing;
//! * **retry ladder** — parallel, parallel retry, bit-identical serial
//!   fallback, typed error — in that order, per request;
//! * **graceful degradation** — a per-session quality ladder
//!   (`Full → Reduced → SerialOnly`) driven by consecutive outcomes,
//!   stepping back up as health returns.
//!
//! Fault isolation is the point: a panic injected into one session's
//! render (see [`FaultSpec`](protocol::FaultSpec)) is contained by that
//! session's supervisor — the pipeline restarts, the request gets a typed
//! error or a degraded frame, and every other session keeps producing
//! frames bit-identical to the serial renderer.

pub mod budget;
pub mod cache;
pub mod events;
pub mod metrics;
pub mod protocol;
pub mod session;

pub use budget::{Lease, WorkerBudget};
pub use cache::{VolumeCache, VolumeKey};
pub use events::EventLog;
pub use metrics::ServeMetrics;
pub use protocol::{FaultSpec, HelloReq, Quality, RenderReq, Request, PROTOCOL};
pub use session::{Health, Level, Session};

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use swr_error::{panic_message, Error};
use swr_shard::{SceneSpec, ShardTransport};
use swr_telemetry::Json;

/// Service configuration; [`Default`] gives test-friendly values.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Global worker budget shared across sessions.
    pub budget: usize,
    /// Per-session ceiling on parallel render workers.
    pub max_threads_per_session: usize,
    /// Bound on each session's pending-request queue; overflow is shed.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry one.
    pub default_deadline_ms: u64,
    /// Scheduler watchdog ceiling (clamped per render to the remaining
    /// deadline budget).
    pub watchdog: Duration,
    /// Consecutive faulted requests before a session steps down a quality
    /// level.
    pub degrade_after: u32,
    /// Consecutive healthy requests before a session steps back up.
    pub recover_after: u32,
    /// Zoom multiplier at the `Reduced` quality level.
    pub reduced_zoom: f64,
    /// Sidecar scrape listener address (`--expose`); `None` disables it.
    /// The sidecar speaks just enough HTTP for `curl`/Prometheus and
    /// serves [`ServeMetrics::exposition`] without touching the protocol
    /// port — a scraper can never occupy a session slot.
    pub expose: Option<String>,
    /// JSONL event-log path; `None` keeps events in memory only.
    pub event_log: Option<String>,
    /// Directory for flight-recorder forensics dumps; `None` disables
    /// dumping. Defaults to `swr-flight` under the system temp dir.
    pub flight_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            budget: 8,
            max_threads_per_session: 4,
            queue_depth: 16,
            default_deadline_ms: 30_000,
            watchdog: Duration::from_secs(10),
            degrade_after: 3,
            recover_after: 2,
            reduced_zoom: 0.5,
            expose: None,
            event_log: None,
            flight_dir: Some(
                std::env::temp_dir()
                    .join("swr-flight")
                    .to_string_lossy()
                    .into_owned(),
            ),
        }
    }
}

/// A bounded MPSC queue of parsed requests, stamped with arrival time so
/// queueing delay counts against the deadline. `None` is the reader's
/// end-of-stream sentinel.
struct RequestQueue {
    items: Mutex<VecDeque<Option<(Request, Instant)>>>,
    ready: Condvar,
    depth: usize,
}

impl RequestQueue {
    fn new(depth: usize) -> Self {
        RequestQueue {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues unless the bound is hit; a refused push is the shed signal.
    fn try_push(&self, req: Request, arrived: Instant) -> bool {
        let mut q = self.items.lock();
        if q.len() >= self.depth {
            return false;
        }
        q.push_back(Some((req, arrived)));
        self.ready.notify_one();
        true
    }

    /// Sentinel push: always succeeds (never sheds the goodbye).
    fn close(&self) {
        self.items.lock().push_back(None);
        self.ready.notify_one();
    }

    /// Pops the next entry, waking periodically so the caller can observe
    /// a server-wide stop.
    fn pop(&self, stop: &AtomicBool) -> Option<(Request, Instant)> {
        let mut q = self.items.lock();
        loop {
            if let Some(entry) = q.pop_front() {
                return entry;
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait_for(&mut q, Duration::from_millis(50));
        }
    }
}

/// Line-oriented response writer shared by the reader (sheds, parse
/// errors) and the session worker (everything else).
#[derive(Clone)]
struct ResponseWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl ResponseWriter {
    fn new(stream: TcpStream) -> Self {
        ResponseWriter {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Writes one response line. A dead peer is not an error worth
    /// propagating — the reader will see EOF and close the session.
    fn send(&self, resp: &Json) {
        let mut line = resp.to_string();
        line.push('\n');
        let mut s = self.stream.lock();
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }
}

/// The daemon: accept loop, session threads, shared budget/cache/metrics.
pub struct Server {
    listener: TcpListener,
    expose: Option<Arc<TcpListener>>,
    cfg: Arc<ServeConfig>,
    budget: Arc<WorkerBudget>,
    cache: Arc<VolumeCache>,
    metrics: ServeMetrics,
    events: EventLog,
    stop: Arc<AtomicBool>,
    next_session: AtomicU64,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Binds the listen socket (and the `--expose` sidecar, when
    /// configured); the accept loop starts in [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let expose = match &cfg.expose {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(Arc::new(l))
            }
            None => None,
        };
        let events = match &cfg.event_log {
            Some(path) => EventLog::to_file(path)?,
            None => EventLog::in_memory(),
        };
        let metrics = ServeMetrics::new();
        let budget = WorkerBudget::new(cfg.budget);
        metrics.set_gauge("serve.budget_total", budget.total() as f64);
        metrics.set_gauge("serve.budget_in_use", 0.0);
        metrics.set_gauge("serve.sessions", 0.0);
        metrics.set_gauge("serve.degraded", 0.0);
        Ok(Server {
            listener,
            expose,
            cfg: Arc::new(cfg),
            budget,
            cache: VolumeCache::new(),
            metrics,
            events,
            stop: Arc::new(AtomicBool::new(false)),
            next_session: AtomicU64::new(1),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, Error> {
        Ok(self.listener.local_addr()?)
    }

    /// The sidecar scrape listener's bound address, when enabled.
    pub fn expose_addr(&self) -> Option<SocketAddr> {
        self.expose.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The structured event log (shared with every session).
    pub fn events(&self) -> EventLog {
        self.events.clone()
    }

    /// Shared stop flag: setting it makes [`Server::run`] return after
    /// closing every live connection. Signal handlers and test harnesses
    /// both drive shutdown through this.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Service metrics handle (shared with every session).
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.clone()
    }

    /// Runs the accept loop until the stop flag is raised, then shuts down
    /// every live connection and joins the session threads.
    pub fn run(&self) -> Result<(), Error> {
        let expose_thread = self.expose.as_ref().map(|l| {
            let l = Arc::clone(l);
            let metrics = self.metrics.clone();
            let stop = Arc::clone(&self.stop);
            thread::Builder::new()
                .name("swr-serve-expose".into())
                .spawn(move || expose_loop(&l, &metrics, &stop))
                .map_err(Error::from)
        });
        let expose_thread = match expose_thread {
            Some(t) => Some(t?),
            None => None,
        };
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        self.conns.lock().push(clone);
                    }
                    let conn = Connection {
                        cfg: Arc::clone(&self.cfg),
                        budget: Arc::clone(&self.budget),
                        cache: Arc::clone(&self.cache),
                        metrics: self.metrics.clone(),
                        events: self.events.clone(),
                        stop: Arc::clone(&self.stop),
                    };
                    workers.push(
                        thread::Builder::new()
                            .name(format!("swr-serve-session-{id}"))
                            .spawn(move || conn.serve(id, stream))
                            .map_err(Error::from)?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e.into()),
            }
            workers.retain(|w| !w.is_finished());
        }
        // Graceful shutdown: close every live socket so readers see EOF,
        // then wait for each session to finish its in-flight request.
        for s in self.conns.lock().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for w in workers {
            let _ = w.join();
        }
        if let Some(t) = expose_thread {
            let _ = t.join();
        }
        Ok(())
    }
}

/// The `--expose` sidecar: answers every TCP connection with one
/// HTTP/1.0 response carrying the current exposition, then closes. Just
/// enough HTTP for `curl` and a Prometheus scrape job; renders are never
/// blocked (see [`ServeMetrics::exposition`]) and a scraper never enters
/// the protocol port's session machinery.
fn expose_loop(listener: &TcpListener, metrics: &ServeMetrics, stop: &AtomicBool) {
    use std::io::Read;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut s, _peer)) => {
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                // Drain (and ignore) the request head; any path scrapes.
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                let body = metrics.exposition();
                let head = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    swr_telemetry::EXPOSITION_CONTENT_TYPE,
                    body.len()
                );
                let _ = s.write_all(head.as_bytes());
                let _ = s.write_all(body.as_bytes());
                let _ = s.flush();
                let _ = s.shutdown(Shutdown::Both);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

/// Everything one connection thread needs, cloned out of the server.
struct Connection {
    cfg: Arc<ServeConfig>,
    budget: Arc<WorkerBudget>,
    cache: Arc<VolumeCache>,
    metrics: ServeMetrics,
    events: EventLog,
    stop: Arc<AtomicBool>,
}

impl Connection {
    /// Runs one session to completion. Never panics outward: the daemon's
    /// accept loop must outlive anything a session does.
    fn serve(self, id: u64, stream: TcpStream) {
        let writer = match stream.try_clone() {
            Ok(w) => ResponseWriter::new(w),
            Err(_) => return,
        };
        let queue = Arc::new(RequestQueue::new(self.cfg.queue_depth));
        let reader = {
            let queue = Arc::clone(&queue);
            let writer = writer.clone();
            let metrics = self.metrics.clone();
            let stream = BufReader::new(stream);
            thread::Builder::new()
                .name(format!("swr-serve-reader-{id}"))
                .spawn(move || read_loop(stream, &queue, &writer, &metrics))
        };
        self.metrics.adjust_gauge("serve.sessions", 1.0);
        self.events.emit("session_open", id, None, &[]);
        self.session_loop(id, &queue, &writer);
        self.metrics.adjust_gauge("serve.sessions", -1.0);
        self.events.emit("session_close", id, None, &[]);
        // Unblock the reader if the session ended first (bye / stop), then
        // reap it.
        {
            let s = writer.stream.lock();
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Ok(r) = reader {
            let _ = r.join();
        }
    }

    /// Dispatches queued requests until the stream closes, `bye` arrives,
    /// or the server stops. The outer `catch_unwind` is the session
    /// supervisor: a panic that escapes the retry ladder restarts the
    /// pipeline and answers with a typed `session_failed`, keeping both
    /// the session and the daemon alive.
    fn session_loop(&self, id: u64, queue: &RequestQueue, writer: &ResponseWriter) {
        let mut session: Option<Session> = None;
        while let Some((req, arrived)) = queue.pop(&self.stop) {
            match req {
                Request::Ping => writer.send(&protocol::pong_response()),
                Request::Stats => writer.send(&protocol::stats_response(self.metrics.to_json())),
                Request::Metrics => {
                    writer.send(&protocol::metrics_response(self.metrics.exposition()))
                }
                Request::Bye => {
                    writer.send(&protocol::bye_response());
                    break;
                }
                Request::Hello(h) => match self.open_session(id, &h) {
                    Ok(s) => {
                        writer.send(&protocol::hello_response(
                            id,
                            s.threads(),
                            self.budget.total(),
                        ));
                        if let Some(mut old) = session.replace(s) {
                            old.close();
                        }
                    }
                    Err(e) => {
                        self.metrics.inc("serve.errors");
                        writer.send(&protocol::error_response(None, &e));
                    }
                },
                Request::Render(r) => {
                    let Some(s) = session.as_mut() else {
                        self.metrics.inc("serve.errors");
                        writer.send(&protocol::error_response(
                            Some(r.id),
                            &Error::Protocol {
                                reason: "render before hello".into(),
                            },
                        ));
                        continue;
                    };
                    let mut out = Vec::new();
                    let handled =
                        catch_unwind(AssertUnwindSafe(|| s.handle_render(&r, arrived, &mut out)));
                    if let Err(payload) = handled {
                        // Supervisor rung: dump the flight recorder while
                        // the dying attempt's spans are still in its rings,
                        // then contain, restart, and answer typed.
                        let message = panic_message(payload.as_ref());
                        s.dump_flight(r.id, "session_failed");
                        self.events.emit(
                            "session_failed",
                            id,
                            Some(r.id),
                            &[("message", Json::Str(message.clone()))],
                        );
                        s.restart_pipeline();
                        self.metrics.inc("serve.errors");
                        out.push(protocol::error_response(
                            Some(r.id),
                            &Error::SessionFailed {
                                session: id,
                                message,
                            },
                        ));
                    }
                    for resp in &out {
                        writer.send(resp);
                    }
                }
            }
        }
        if let Some(mut s) = session {
            s.close();
        }
    }

    fn open_session(&self, id: u64, h: &HelloReq) -> Result<Session, Error> {
        // A resident budget implies the bricked layout; otherwise the
        // client picks the layout explicitly (default flat).
        let layout = match &h.layout {
            Some(l) => l.clone(),
            None if h.resident_mb.is_some() => "bricked".into(),
            None => "flat".into(),
        };
        let key = VolumeKey {
            phantom: h.phantom.clone(),
            base: h.base,
            seed: h.seed,
            transfer: h.transfer.clone().unwrap_or_default(),
            layout,
            brick: h.brick.unwrap_or(cache::DEFAULT_SERVE_BRICK),
            resident_bytes: h.resident_mb.map(|mb| mb << 20).unwrap_or(0),
        };
        let enc = self.cache.get(&key)?;
        let mut session = Session::new(
            id,
            enc,
            h.threads.unwrap_or(self.cfg.max_threads_per_session),
            Arc::clone(&self.cfg),
            Arc::clone(&self.budget),
            self.metrics.clone(),
            self.events.clone(),
        );
        if let Some(shards) = h.shards {
            // The shard fleet regenerates the scene inside each worker
            // process, so it composes with the flat layout only; a bricked
            // layout or resident budget is a config conflict, not a silent
            // ignore.
            if key.layout != "flat" || h.resident_mb.is_some() {
                return Err(Error::InvalidConfig {
                    reason: "sharded rendering requires the flat layout with no resident budget"
                        .into(),
                });
            }
            let transport = match h.shard_transport.as_deref() {
                Some(t) => ShardTransport::parse(t)?,
                None => ShardTransport::default(),
            };
            // A bad shard count is the client's mistake — refuse the hello
            // with the typed reason before touching the fleet.
            if !(1..=256).contains(&shards) {
                return Err(Error::InvalidConfig {
                    reason: format!("shard count {shards} out of range 1..=256"),
                });
            }
            let scene = match &h.transfer {
                Some(t) => SceneSpec {
                    phantom: h.phantom.clone(),
                    base: h.base,
                    seed: h.seed,
                    transfer: t.clone(),
                },
                None => SceneSpec::new(&h.phantom, h.base, h.seed)?,
            };
            if let Err(e) = session.enable_sharding(&scene, shards, transport) {
                // Worker binary missing or the fleet failed to spawn: the
                // session still opens, on the in-process ladder.
                self.metrics.inc("serve.shard_unavailable");
                self.events.emit(
                    "shard_unavailable",
                    id,
                    None,
                    &[("reason", Json::Str(e.wire_code().into()))],
                );
            }
        }
        Ok(session)
    }
}

/// The per-connection reader: parses lines off the socket and enqueues
/// them. Malformed lines and queue overflow are answered here, directly,
/// so a wedged render can never stop the session from shedding load.
fn read_loop(
    mut stream: BufReader<TcpStream>,
    queue: &RequestQueue,
    writer: &ResponseWriter,
    metrics: &ServeMetrics,
) {
    let mut line = String::new();
    loop {
        line.clear();
        match stream.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Ok(req) => {
                let is_bye = req == Request::Bye;
                if !queue.try_push(req, Instant::now()) {
                    // Bounded queue full: shed at the door with a typed
                    // refusal instead of buffering unbounded work.
                    metrics.inc("serve.shed");
                    metrics.inc("serve.errors");
                    writer.send(&protocol::error_response(
                        None,
                        &Error::Overloaded {
                            reason: "session queue full".into(),
                        },
                    ));
                    continue;
                }
                if is_bye {
                    break;
                }
            }
            Err(e) => {
                metrics.inc("serve.errors");
                writer.send(&protocol::error_response(None, &e));
            }
        }
    }
    queue.close();
}

/// A running server on its own thread, for tests and the binary.
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    /// The sidecar scrape listener's address, when `--expose` is set.
    pub expose_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    metrics: ServeMetrics,
    events: EventLog,
    thread: thread::JoinHandle<Result<(), Error>>,
}

impl ServerHandle {
    /// Service metrics handle.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.clone()
    }

    /// The structured event log.
    pub fn events(&self) -> EventLog {
        self.events.clone()
    }

    /// The shared stop flag (what a SIGTERM handler raises).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Raises the stop flag and waits for the accept loop to drain.
    pub fn shutdown(self) -> Result<(), Error> {
        self.stop.store(true, Ordering::Release);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(Error::SessionFailed {
                session: 0,
                message: "server thread panicked".into(),
            }),
        }
    }
}

/// Binds and runs a server on a background thread.
pub fn spawn(cfg: ServeConfig) -> Result<ServerHandle, Error> {
    let server = Server::bind(cfg)?;
    let addr = server.local_addr()?;
    let expose_addr = server.expose_addr();
    let stop = server.stop_flag();
    let metrics = server.metrics();
    let events = server.events();
    let thread = thread::Builder::new()
        .name("swr-serve-accept".into())
        .spawn(move || server.run())?;
    Ok(ServerHandle {
        addr,
        expose_addr,
        stop,
        metrics,
        events,
        thread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        (BufReader::new(stream.try_clone().expect("clone")), stream)
    }

    fn send_line(stream: &mut TcpStream, line: &str) {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    }

    fn read_json(reader: &mut BufReader<TcpStream>) -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        Json::parse(line.trim()).expect("response is JSON")
    }

    #[test]
    fn end_to_end_session_renders_and_shuts_down_cleanly() {
        let handle = spawn(ServeConfig {
            budget: 2,
            ..ServeConfig::default()
        })
        .expect("spawn");
        let (mut rx, mut tx) = connect(handle.addr);

        send_line(&mut tx, r#"{"op":"ping"}"#);
        assert_eq!(
            read_json(&mut rx).get("type").and_then(Json::as_str),
            Some("pong")
        );

        // Render before hello is a typed protocol error, not a hangup.
        send_line(&mut tx, r#"{"op":"render","id":1}"#);
        let v = read_json(&mut rx);
        assert_eq!(v.get("code").and_then(Json::as_str), Some("protocol"));

        send_line(
            &mut tx,
            r#"{"op":"hello","phantom":"mri","base":20,"seed":11,"threads":2}"#,
        );
        let v = read_json(&mut rx);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("hello"));
        assert_eq!(v.get("protocol").and_then(Json::as_str), Some(PROTOCOL));

        send_line(&mut tx, r#"{"op":"render","id":2,"angle_y":30.0}"#);
        let v = read_json(&mut rx);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("frame"), "{v:?}");
        assert_eq!(v.get("quality").and_then(Json::as_str), Some("full"));
        let hash = v
            .get("hash")
            .and_then(Json::as_str)
            .expect("hash")
            .to_string();
        assert_eq!(hash.len(), 16);

        // Malformed line: typed error, session still usable.
        send_line(&mut tx, "not json at all");
        let v = read_json(&mut rx);
        assert_eq!(v.get("code").and_then(Json::as_str), Some("protocol"));

        send_line(&mut tx, r#"{"op":"stats"}"#);
        let v = read_json(&mut rx);
        let m = v.get("metrics").expect("metrics");
        assert!(m.to_string().contains("serve.frames"), "{m:?}");

        // The metrics op ships a valid Prometheus exposition.
        send_line(&mut tx, r#"{"op":"metrics"}"#);
        let v = read_json(&mut rx);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("metrics"));
        let expo = v
            .get("exposition")
            .and_then(Json::as_str)
            .expect("exposition text");
        let stats = swr_telemetry::validate_exposition(expo).expect("exposition validates");
        assert!(stats.counters["swr_serve_frames_total"] >= 1.0);

        send_line(&mut tx, r#"{"op":"bye"}"#);
        assert_eq!(
            read_json(&mut rx).get("type").and_then(Json::as_str),
            Some("bye")
        );
        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn expose_sidecar_serves_http_scrapes_and_logs_session_events() {
        use std::io::Read;
        let handle = spawn(ServeConfig {
            expose: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        })
        .expect("spawn");
        let events = handle.events();
        // One quick protocol session so the scrape has something to show.
        let (mut rx, mut tx) = connect(handle.addr);
        send_line(
            &mut tx,
            r#"{"op":"hello","phantom":"mri","base":20,"seed":11,"threads":1}"#,
        );
        let _ = read_json(&mut rx);
        send_line(&mut tx, r#"{"op":"render","id":1}"#);
        let v = read_json(&mut rx);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("frame"), "{v:?}");
        send_line(&mut tx, r#"{"op":"bye"}"#);
        let _ = read_json(&mut rx);

        let addr = handle.expose_addr.expect("sidecar bound");
        let scrape = |label: &str| -> String {
            let mut s = TcpStream::connect(addr).expect(label);
            s.set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect(label);
            let mut buf = String::new();
            s.read_to_string(&mut buf).expect(label);
            assert!(buf.starts_with("HTTP/1.0 200 OK"), "{label}: {buf}");
            assert!(
                buf.contains(swr_telemetry::EXPOSITION_CONTENT_TYPE),
                "{label}: {buf}"
            );
            buf.split("\r\n\r\n").nth(1).expect(label).to_string()
        };
        let first = swr_telemetry::validate_exposition(&scrape("first")).expect("first valid");
        let second = swr_telemetry::validate_exposition(&scrape("second")).expect("second valid");
        assert!(first.counters["swr_serve_frames_total"] >= 1.0);
        // Counters are monotone across scrapes; the scrape counter proves
        // both scrapes were really served.
        assert!(
            second.counters["swr_serve_scrapes_total"] > first.counters["swr_serve_scrapes_total"]
        );
        handle.shutdown().expect("clean shutdown");
        let kinds: Vec<String> = events
            .recent()
            .iter()
            .filter_map(|e| e.get("event").and_then(Json::as_str).map(String::from))
            .collect();
        assert!(kinds.contains(&"session_open".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"session_close".to_string()), "{kinds:?}");
    }
}
