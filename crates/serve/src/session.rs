//! Per-session supervision: the deadline check, the retry ladder, and the
//! quality ladder.
//!
//! Each client session owns an [`AnimationPipeline`] and a serial fallback
//! renderer. A render request walks a fixed supervision policy:
//!
//! 1. **Deadline** — the request carries a millisecond budget measured
//!    from arrival. An expired request is answered with
//!    [`Error::DeadlineExceeded`] without rendering; a render in progress
//!    is bounded by the scheduler watchdog, clamped to the remaining
//!    budget, so a wedged frame cannot outlive its deadline.
//! 2. **Admission** — the parallel path runs only under a [`Lease`] from
//!    the global [`WorkerBudget`]. An exhausted budget is a load-shed
//!    response ([`Error::Overloaded`]), never a queued-forever render.
//! 3. **Retry ladder** — a render fault (worker panic the pipeline could
//!    not repair, scheduler stall, delivery-stage panic) is retried once
//!    on the parallel path, then falls to the bit-identical serial
//!    renderer, and only then fails the request with a typed error. The
//!    daemon and the session both survive every rung.
//! 4. **Quality ladder** — consecutive faulted or shed requests step the
//!    session down `Full → Reduced → SerialOnly` (reduced output
//!    dimensions, then serial-only rendering); consecutive healthy
//!    requests step it back up. Degradation is a response annotation, not
//!    a disconnect.

use crate::budget::{Lease, WorkerBudget};
use crate::metrics::ServeMetrics;
use crate::protocol::{error_response, frame_response, Quality, RenderReq};
use crate::ServeConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swr_core::{AnimationPipeline, ParallelConfig};
use swr_error::{panic_message, Error};
use swr_geom::ViewSpec;
use swr_render::SerialRenderer;
use swr_telemetry::Json;
use swr_volume::EncodedVolume;

/// The graceful-degradation ladder, top to bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Full quality on the parallel pipeline.
    Full,
    /// Reduced output dimensions (zoom scaled down) on the parallel
    /// pipeline.
    Reduced,
    /// Serial-only rendering; no budget lease needed, nothing to shed.
    SerialOnly,
}

impl Level {
    fn down(self) -> Level {
        match self {
            Level::Full => Level::Reduced,
            _ => Level::SerialOnly,
        }
    }

    fn up(self) -> Level {
        match self {
            Level::SerialOnly => Level::Reduced,
            _ => Level::Full,
        }
    }
}

/// Consecutive-outcome health tracker driving [`Level`] transitions.
#[derive(Debug)]
pub struct Health {
    /// Current ladder level.
    pub level: Level,
    faults: u32,
    healthy: u32,
    degrade_after: u32,
    recover_after: u32,
}

impl Health {
    fn new(cfg: &ServeConfig) -> Self {
        Health {
            level: Level::Full,
            faults: 0,
            healthy: 0,
            degrade_after: cfg.degrade_after.max(1),
            recover_after: cfg.recover_after.max(1),
        }
    }

    /// Records one request outcome; steps the ladder after the configured
    /// run of consecutive faults or healthy completions.
    fn note(&mut self, fault: bool) {
        if fault {
            self.healthy = 0;
            self.faults += 1;
            if self.faults >= self.degrade_after {
                self.faults = 0;
                self.level = self.level.down();
            }
        } else {
            self.faults = 0;
            self.healthy += 1;
            if self.healthy >= self.recover_after {
                self.healthy = 0;
                self.level = self.level.up();
            }
        }
    }
}

/// One client session: scene, pipeline, fallback renderer, health.
pub struct Session {
    /// Session id (echoed in `session_failed` errors and logs).
    pub id: u64,
    enc: Arc<(EncodedVolume, [usize; 3])>,
    threads: usize,
    pipe: AnimationPipeline,
    serial: SerialRenderer,
    health: Health,
    cfg: Arc<ServeConfig>,
    budget: Arc<WorkerBudget>,
    metrics: ServeMetrics,
}

/// Whether an error is worth walking further down the retry ladder for.
fn retryable(e: &Error) -> bool {
    matches!(
        e,
        Error::WorkerPanicked { .. } | Error::Stalled { .. } | Error::SessionFailed { .. }
    )
}

impl Session {
    /// Opens a session over an encoded volume.
    pub fn new(
        id: u64,
        enc: Arc<(EncodedVolume, [usize; 3])>,
        threads: usize,
        cfg: Arc<ServeConfig>,
        budget: Arc<WorkerBudget>,
        metrics: ServeMetrics,
    ) -> Self {
        let threads = threads.clamp(1, cfg.max_threads_per_session);
        let mut pcfg = ParallelConfig::with_procs(threads);
        pcfg.watchdog_timeout = Some(cfg.watchdog);
        Session {
            id,
            enc,
            threads,
            pipe: AnimationPipeline::new(pcfg),
            serial: SerialRenderer::new(),
            health: Health::new(&cfg),
            cfg: Arc::clone(&cfg),
            budget,
            metrics,
        }
    }

    /// Worker threads this session renders with (post-clamp).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current degradation level.
    pub fn level(&self) -> Level {
        self.health.level
    }

    /// Supervisor restart hook: called after a contained panic escaped the
    /// retry ladder. Drops poisoned cross-frame state so the next request
    /// starts clean; the session (and daemon) stay up.
    pub fn restart_pipeline(&mut self) {
        self.pipe.fault = None;
        self.pipe.reset();
        self.metrics.inc("serve.session_restarts");
    }

    /// Applies one request outcome to the health ladder and keeps the
    /// `serve.degraded` gauge in step with level transitions.
    fn note_outcome(&mut self, fault: bool) {
        let before = self.health.level;
        self.health.note(fault);
        let after = self.health.level;
        if before == Level::Full && after != Level::Full {
            self.metrics.adjust_gauge("serve.degraded", 1.0);
        } else if before != Level::Full && after == Level::Full {
            self.metrics.adjust_gauge("serve.degraded", -1.0);
        }
    }

    /// Called when the session closes: settles the degraded gauge.
    pub fn close(&mut self) {
        if self.health.level != Level::Full {
            self.metrics.adjust_gauge("serve.degraded", -1.0);
            self.health.level = Level::Full;
        }
    }

    /// Watchdog for a render starting now: the configured ceiling, clamped
    /// to the remaining deadline budget (floored so it stays valid).
    fn watchdog_until(&self, deadline: Instant) -> Duration {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.cfg
            .watchdog
            .min(remaining)
            .max(Duration::from_millis(10))
    }

    /// Handles one render request end to end, pushing one response line
    /// per frame (or per failure) onto `out`.
    pub fn handle_render(&mut self, req: &RenderReq, arrived: Instant, out: &mut Vec<Json>) {
        self.metrics.inc("serve.requests");
        let budget_ms = req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let deadline = arrived + Duration::from_millis(budget_ms);
        if req.fault.is_some() {
            self.metrics.inc("serve.faults_injected");
        }

        // Already expired while queued: an overload symptom, answered
        // without burning budget on a frame nobody can use.
        if Instant::now() >= deadline {
            self.push_deadline_error(req.id, budget_ms, arrived, out);
            self.note_outcome(true);
            return;
        }

        let level = self.health.level;
        let zoom_scale = if level == Level::Reduced {
            self.cfg.reduced_zoom
        } else {
            1.0
        };
        let [dx, dy, dz] = self.enc.1;
        let views: Vec<ViewSpec> = (0..req.frames)
            .map(|f| {
                let mut view = ViewSpec::new([dx, dy, dz])
                    .rotate_x(req.angle_x.to_radians())
                    .rotate_y((req.angle_y + f as f64 * req.step).to_radians());
                // Direct field write: the builder asserts on zoom <= 0, but a
                // bad wire value must become a typed error, not a panic.
                view.zoom = req.zoom * zoom_scale;
                view
            })
            .collect();
        for view in &views {
            if let Err(e) = view.try_validate() {
                // The client's view is degenerate: typed error, no health
                // penalty — the session itself is fine.
                out.push(error_response(Some(req.id), &e));
                self.metrics.inc("serve.errors");
                return;
            }
        }

        if level == Level::SerialOnly {
            // Bottom of the quality ladder: no lease, no sheddable work.
            self.metrics.inc("serve.serial_fallbacks");
            let ok = self.serial_frames(req, &views, 0, 1, budget_ms, arrived, deadline, out);
            self.note_outcome(!ok);
            return;
        }

        let Some(lease) = self.budget.acquire_up_to(self.threads) else {
            // Admission control: the global budget is exhausted — shed.
            self.metrics.inc("serve.shed");
            self.metrics.inc("serve.errors");
            out.push(error_response(
                Some(req.id),
                &Error::Overloaded {
                    reason: format!(
                        "worker budget exhausted ({} slots all leased)",
                        self.budget.total()
                    ),
                },
            ));
            self.note_outcome(true);
            return;
        };
        self.metrics
            .set_gauge("serve.budget_in_use", self.budget.in_use() as f64);

        // The retry ladder: parallel, parallel retry, serial, typed error.
        let mut next = 0usize; // frames already answered
        let mut fault_event = false;
        let mut attempt = 1u32;
        loop {
            let outcome = self.parallel_attempt(
                req, &views, &mut next, attempt, level, budget_ms, arrived, deadline, &lease, out,
            );
            match outcome {
                Ok(clean) => {
                    fault_event |= !clean || attempt > 1;
                    break;
                }
                Err(e) if retryable(&e) && attempt == 1 => {
                    self.metrics.inc("serve.retries");
                    fault_event = true;
                    attempt = 2;
                }
                Err(e) if retryable(&e) => {
                    // Second parallel failure: fall to the serial rung for
                    // the frames not yet answered.
                    fault_event = true;
                    self.metrics.inc("serve.serial_fallbacks");
                    drop(e);
                    self.serial_frames(req, &views, next, 3, budget_ms, arrived, deadline, out);
                    break;
                }
                Err(e) => {
                    out.push(error_response(Some(req.id), &e));
                    self.metrics.inc("serve.errors");
                    fault_event = true;
                    break;
                }
            }
        }
        drop(lease);
        self.metrics
            .set_gauge("serve.budget_in_use", self.budget.in_use() as f64);
        self.note_outcome(fault_event);
    }

    /// One parallel rung: renders `views[*next..]` through the pipeline,
    /// answering each delivered frame. Returns `Ok(clean)` when every
    /// remaining frame was answered (`clean` = no repair/deadline blemish),
    /// or the typed error that interrupted the animation. A panic anywhere
    /// in the attempt (injected sink faults included) is contained and
    /// returned as [`Error::SessionFailed`]; the pipeline is reset so the
    /// next rung starts from quiescent state.
    #[allow(clippy::too_many_arguments)]
    fn parallel_attempt(
        &mut self,
        req: &RenderReq,
        views: &[ViewSpec],
        next: &mut usize,
        attempt: u32,
        level: Level,
        budget_ms: u64,
        arrived: Instant,
        deadline: Instant,
        lease: &Lease,
        out: &mut Vec<Json>,
    ) -> Result<bool, Error> {
        if *next >= views.len() {
            return Ok(true);
        }
        self.pipe.cfg.nprocs = lease.granted();
        self.pipe.cfg.watchdog_timeout = Some(self.watchdog_until(deadline));
        if let Some(spec) = &req.fault {
            if attempt == 1 || spec.sticky {
                self.pipe.fault = Some(spec.to_plan());
            }
        }
        let base = *next;
        let degraded_lease = lease.granted() < self.threads;
        let mut blemish = degraded_lease && level == Level::Full;
        let attempt_out = {
            let enc = &self.enc.0;
            let metrics = &self.metrics;
            let pipe = &mut self.pipe;
            let delivered = &mut *next;
            let responses = &mut *out;
            let blemish = &mut blemish;
            catch_unwind(AssertUnwindSafe(move || {
                pipe.try_render_animation(enc, &views[base..], |i, img, stats| {
                    let idx = base + i;
                    let elapsed_ms = arrived.elapsed().as_millis() as u64;
                    if Instant::now() >= deadline {
                        metrics.inc("serve.deadline_missed");
                        metrics.inc("serve.errors");
                        responses.push(error_response(
                            Some(req.id),
                            &Error::DeadlineExceeded {
                                budget_ms,
                                elapsed_ms,
                            },
                        ));
                        *blemish = true;
                    } else {
                        let quality = if level == Level::Reduced {
                            Quality::Reduced
                        } else if stats.degraded {
                            Quality::Repaired
                        } else {
                            Quality::Full
                        };
                        if stats.degraded {
                            *blemish = true;
                        }
                        metrics.inc("serve.frames");
                        responses.push(frame_response(
                            req.id,
                            idx,
                            &img,
                            quality,
                            attempt,
                            stats.degraded,
                            elapsed_ms,
                            req.want_pixels,
                        ));
                    }
                    *delivered = idx + 1;
                })
            }))
        };
        // Detach the per-request fault so a non-sticky (transient) fault
        // cannot re-fire on the retry rung.
        self.pipe.take_fault();
        match attempt_out {
            Ok(Ok(())) => Ok(!blemish),
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                // A panic past the pipeline's own containment (delivery
                // stage, response path): reset to quiescent state and let
                // the ladder continue.
                self.restart_pipeline();
                Err(Error::SessionFailed {
                    session: self.id,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// The serial rung (and the whole of `SerialOnly` mode): renders
    /// `views[from..]` one frame at a time on the session thread, bounded
    /// by the deadline. Returns whether every frame was answered cleanly.
    #[allow(clippy::too_many_arguments)]
    fn serial_frames(
        &mut self,
        req: &RenderReq,
        views: &[ViewSpec],
        from: usize,
        attempt: u32,
        budget_ms: u64,
        arrived: Instant,
        deadline: Instant,
        out: &mut Vec<Json>,
    ) -> bool {
        let mut clean = true;
        for (idx, view) in views.iter().enumerate().skip(from) {
            if Instant::now() >= deadline {
                self.push_deadline_error(req.id, budget_ms, arrived, out);
                clean = false;
                continue;
            }
            let rendered = {
                let enc = &self.enc.0;
                let serial = &mut self.serial;
                catch_unwind(AssertUnwindSafe(move || serial.try_render(enc, view)))
            };
            let elapsed_ms = arrived.elapsed().as_millis() as u64;
            match rendered {
                Ok(Ok(img)) => {
                    self.metrics.inc("serve.frames");
                    out.push(frame_response(
                        req.id,
                        idx,
                        &img,
                        Quality::Serial,
                        attempt,
                        false,
                        elapsed_ms,
                        req.want_pixels,
                    ));
                }
                Ok(Err(e)) => {
                    self.metrics.inc("serve.errors");
                    out.push(error_response(Some(req.id), &e));
                    clean = false;
                }
                Err(payload) => {
                    // Even the serial rung panicking must not take the
                    // session down: typed error, supervisor counts it.
                    self.metrics.inc("serve.errors");
                    self.metrics.inc("serve.session_restarts");
                    out.push(error_response(
                        Some(req.id),
                        &Error::SessionFailed {
                            session: self.id,
                            message: panic_message(payload.as_ref()),
                        },
                    ));
                    clean = false;
                }
            }
        }
        clean
    }

    fn push_deadline_error(&self, id: u64, budget_ms: u64, arrived: Instant, out: &mut Vec<Json>) {
        self.metrics.inc("serve.deadline_missed");
        self.metrics.inc("serve.errors");
        out.push(error_response(
            Some(id),
            &Error::DeadlineExceeded {
                budget_ms,
                elapsed_ms: arrived.elapsed().as_millis() as u64,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{VolumeCache, VolumeKey};
    use crate::protocol::FaultSpec;
    use std::sync::Once;

    fn quiet_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            std::panic::set_hook(Box::new(|_| {}));
        });
    }

    fn test_session(budget: Arc<WorkerBudget>, metrics: ServeMetrics) -> Session {
        let cache = VolumeCache::new();
        let enc = cache
            .get(&VolumeKey {
                phantom: "mri".into(),
                base: 20,
                seed: 11,
                transfer: String::new(),
            })
            .expect("phantom encodes");
        let cfg = Arc::new(ServeConfig {
            degrade_after: 2,
            recover_after: 2,
            ..ServeConfig::default()
        });
        Session::new(1, enc, 2, cfg, budget, metrics)
    }

    fn render_req(id: u64) -> RenderReq {
        RenderReq {
            id,
            angle_x: 12.0,
            angle_y: 30.0,
            zoom: 1.0,
            frames: 1,
            step: 3.0,
            deadline_ms: Some(60_000),
            want_pixels: false,
            fault: None,
        }
    }

    fn first_type(out: &[Json]) -> &str {
        out[0].get("type").and_then(Json::as_str).expect("typed")
    }

    #[test]
    fn clean_request_renders_full_quality() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut out = Vec::new();
        s.handle_render(&render_req(1), Instant::now(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("full"));
        assert_eq!(m.counter("serve.frames"), 1);
        assert_eq!(s.level(), Level::Full);
    }

    #[test]
    fn exhausted_budget_sheds_and_steps_the_ladder_down() {
        let m = ServeMetrics::new();
        let budget = WorkerBudget::new(2);
        let hog = budget.acquire_up_to(2).expect("hog the whole budget");
        let mut s = test_session(Arc::clone(&budget), m.clone());
        // Two consecutive sheds step Full -> Reduced; two more step
        // Reduced -> SerialOnly, where rendering succeeds without a lease.
        for id in 0..4 {
            let mut out = Vec::new();
            s.handle_render(&render_req(id), Instant::now(), &mut out);
            assert_eq!(first_type(&out), "error");
            assert_eq!(
                out[0].get("code").and_then(Json::as_str),
                Some("overloaded")
            );
        }
        assert_eq!(m.counter("serve.shed"), 4);
        assert_eq!(s.level(), Level::SerialOnly);
        assert_eq!(m.gauge("serve.degraded"), Some(1.0));
        let mut out = Vec::new();
        s.handle_render(&render_req(9), Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("serial"));
        // Load drops: consecutive healthy serial frames climb back to
        // Full (2 to reach Reduced, 2 more to reach Full).
        drop(hog);
        for id in 10..13 {
            let mut out = Vec::new();
            s.handle_render(&render_req(id), Instant::now(), &mut out);
            assert_eq!(first_type(&out), "frame");
        }
        assert_eq!(s.level(), Level::Full);
        assert_eq!(m.gauge("serve.degraded"), Some(0.0));
    }

    #[test]
    fn transient_fault_recovers_on_the_parallel_retry() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(5);
        // A truncated queue stalls the scheduler (no panic, rows provably
        // lost); non-sticky, so the retry rung renders clean.
        req.fault = Some(FaultSpec {
            truncate_queue: Some(1000),
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("attempts").and_then(Json::as_u64), Some(2));
        assert_eq!(m.counter("serve.retries"), 1);
        assert_eq!(m.counter("serve.serial_fallbacks"), 0);
    }

    #[test]
    fn sticky_fault_walks_the_whole_ladder_to_serial() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(6);
        req.fault = Some(FaultSpec {
            truncate_queue: Some(1000),
            sticky: true,
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("serial"));
        assert_eq!(out[0].get("attempts").and_then(Json::as_u64), Some(3));
        assert_eq!(m.counter("serve.retries"), 1);
        assert_eq!(m.counter("serve.serial_fallbacks"), 1);
    }

    #[test]
    fn sink_fault_is_contained_and_retried() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(7);
        req.fault = Some(FaultSpec {
            panic_sink_at: Some(0),
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(m.counter("serve.session_restarts"), 1);
        assert_eq!(m.counter("serve.retries"), 1);
    }

    #[test]
    fn expired_deadline_is_refused_without_rendering() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(8);
        req.deadline_ms = Some(1);
        let arrived = Instant::now() - Duration::from_millis(50);
        let mut out = Vec::new();
        s.handle_render(&req, arrived, &mut out);
        assert_eq!(first_type(&out), "error");
        assert_eq!(
            out[0].get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(m.counter("serve.deadline_missed"), 1);
        assert_eq!(m.counter("serve.frames"), 0);
    }

    #[test]
    fn degenerate_view_is_a_typed_error_without_health_penalty() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(9);
        req.zoom = 0.0;
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(first_type(&out), "error");
        assert_eq!(
            out[0].get("code").and_then(Json::as_str),
            Some("invalid_view")
        );
        assert_eq!(s.level(), Level::Full);
    }

    #[test]
    fn multi_frame_request_answers_every_frame_in_order() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(10);
        req.frames = 3;
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 3);
        for (i, resp) in out.iter().enumerate() {
            assert_eq!(resp.get("frame").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(resp.get("id").and_then(Json::as_u64), Some(10));
        }
        assert_eq!(m.counter("serve.frames"), 3);
    }
}
