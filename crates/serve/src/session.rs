//! Per-session supervision: the deadline check, the retry ladder, and the
//! quality ladder.
//!
//! Each client session owns an [`AnimationPipeline`] and a serial fallback
//! renderer. A render request walks a fixed supervision policy:
//!
//! 1. **Deadline** — the request carries a millisecond budget measured
//!    from arrival. An expired request is answered with
//!    [`Error::DeadlineExceeded`] without rendering; a render in progress
//!    is bounded by the scheduler watchdog, clamped to the remaining
//!    budget, so a wedged frame cannot outlive its deadline.
//! 2. **Admission** — the parallel path runs only under a [`Lease`] from
//!    the global [`WorkerBudget`]. An exhausted budget is a load-shed
//!    response ([`Error::Overloaded`]), never a queued-forever render.
//! 3. **Retry ladder** — a render fault (worker panic the pipeline could
//!    not repair, scheduler stall, delivery-stage panic) is retried once
//!    on the parallel path, then falls to the bit-identical serial
//!    renderer, and only then fails the request with a typed error. The
//!    daemon and the session both survive every rung.
//! 4. **Quality ladder** — consecutive faulted or shed requests step the
//!    session down `Full → Reduced → SerialOnly` (reduced output
//!    dimensions, then serial-only rendering); consecutive healthy
//!    requests step it back up. Degradation is a response annotation, not
//!    a disconnect.

use crate::budget::{Lease, WorkerBudget};
use crate::cache::CachedVolume;
use crate::events::EventLog;
use crate::metrics::{correlate, ServeMetrics};
use crate::protocol::{error_response, frame_response, Quality, RenderReq};
use crate::ServeConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swr_core::{AnimationPipeline, ParallelConfig};
use swr_error::{panic_message, Error};
use swr_geom::ViewSpec;
use swr_render::SerialRenderer;
use swr_shard::{SceneSpec, ShardConfig, ShardTransport, ShardedRenderer};
use swr_telemetry::{FlightRecorder, FrameTelemetry, Json, SpanKind, WorkerLog};

/// The graceful-degradation ladder, top to bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Full quality on the parallel pipeline.
    Full,
    /// Reduced output dimensions (zoom scaled down) on the parallel
    /// pipeline.
    Reduced,
    /// Serial-only rendering; no budget lease needed, nothing to shed.
    SerialOnly,
}

impl Level {
    /// Stable name used in events and the live watch view.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Full => "full",
            Level::Reduced => "reduced",
            Level::SerialOnly => "serial_only",
        }
    }

    /// Ladder depth as a gauge value (0 = full, 2 = serial-only).
    pub fn rank(self) -> f64 {
        match self {
            Level::Full => 0.0,
            Level::Reduced => 1.0,
            Level::SerialOnly => 2.0,
        }
    }

    fn down(self) -> Level {
        match self {
            Level::Full => Level::Reduced,
            _ => Level::SerialOnly,
        }
    }

    fn up(self) -> Level {
        match self {
            Level::SerialOnly => Level::Reduced,
            _ => Level::Full,
        }
    }
}

/// Consecutive-outcome health tracker driving [`Level`] transitions.
#[derive(Debug)]
pub struct Health {
    /// Current ladder level.
    pub level: Level,
    faults: u32,
    healthy: u32,
    degrade_after: u32,
    recover_after: u32,
}

impl Health {
    fn new(cfg: &ServeConfig) -> Self {
        Health {
            level: Level::Full,
            faults: 0,
            healthy: 0,
            degrade_after: cfg.degrade_after.max(1),
            recover_after: cfg.recover_after.max(1),
        }
    }

    /// Records one request outcome; steps the ladder after the configured
    /// run of consecutive faults or healthy completions.
    fn note(&mut self, fault: bool) {
        if fault {
            self.healthy = 0;
            self.faults += 1;
            if self.faults >= self.degrade_after {
                self.faults = 0;
                self.level = self.level.down();
            }
        } else {
            self.faults = 0;
            self.healthy += 1;
            if self.healthy >= self.recover_after {
                self.healthy = 0;
                self.level = self.level.up();
            }
        }
    }
}

/// One client session: scene, pipeline, fallback renderer, health.
pub struct Session {
    /// Session id (echoed in `session_failed` errors and logs).
    pub id: u64,
    vol: CachedVolume,
    /// Brick-cache eviction count already attributed to earlier requests
    /// (the cache is shared, so only the delta is this session's).
    brick_evictions_seen: u64,
    threads: usize,
    pipe: AnimationPipeline,
    serial: SerialRenderer,
    /// Multi-process fleet, present when the hello opted into sharding.
    /// Dropped (fleet shut down) on the first sharded failure; the session
    /// then renders through the in-process ladder for its lifetime.
    sharded: Option<ShardedRenderer>,
    health: Health,
    cfg: Arc<ServeConfig>,
    budget: Arc<WorkerBudget>,
    metrics: ServeMetrics,
    events: EventLog,
    recorder: FlightRecorder,
    dump_seq: u32,
}

/// Whether an error is worth walking further down the retry ladder for.
fn retryable(e: &Error) -> bool {
    matches!(
        e,
        Error::WorkerPanicked { .. } | Error::Stalled { .. } | Error::SessionFailed { .. }
    )
}

impl Session {
    /// Opens a session over an encoded volume (in any storage layout).
    pub fn new(
        id: u64,
        vol: CachedVolume,
        threads: usize,
        cfg: Arc<ServeConfig>,
        budget: Arc<WorkerBudget>,
        metrics: ServeMetrics,
        events: EventLog,
    ) -> Self {
        let threads = threads.clamp(1, cfg.max_threads_per_session);
        let mut pcfg = ParallelConfig::with_procs(threads);
        pcfg.watchdog_timeout = Some(cfg.watchdog);
        metrics.set_gauge(&format!("serve.session.{id}.level"), Level::Full.rank());
        let brick_evictions_seen = vol.cache_stats().map(|s| s.evictions).unwrap_or(0);
        Session {
            id,
            vol,
            brick_evictions_seen,
            threads,
            pipe: AnimationPipeline::new(pcfg),
            serial: SerialRenderer::new(),
            sharded: None,
            health: Health::new(&cfg),
            cfg: Arc::clone(&cfg),
            budget,
            metrics,
            events,
            recorder: FlightRecorder::new(FlightRecorder::DEFAULT_CAP),
            dump_seq: 0,
        }
    }

    /// Worker threads this session renders with (post-clamp).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a multi-process shard fleet: `shards` worker processes
    /// rendering over `transport`, tried before the in-process ladder on
    /// every Full-level request. The fleet regenerates the scene from
    /// `scene` in each worker, so the caller must pass the same spec the
    /// session volume was built from (flat layout only).
    pub fn enable_sharding(
        &mut self,
        scene: &SceneSpec,
        shards: usize,
        transport: ShardTransport,
    ) -> Result<(), Error> {
        let renderer = ShardedRenderer::try_new(
            scene,
            ShardConfig {
                shards,
                transport,
                ..ShardConfig::default()
            },
        )?;
        self.metrics
            .set_gauge("serve.shard_workers", renderer.alive() as f64);
        self.sharded = Some(renderer);
        Ok(())
    }

    /// Whether this session currently renders through the shard fleet.
    pub fn sharding(&self) -> bool {
        self.sharded.is_some()
    }

    /// Current degradation level.
    pub fn level(&self) -> Level {
        self.health.level
    }

    /// The session's always-on flight recorder (rings of recent spans).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Supervisor restart hook: called after a contained panic escaped the
    /// retry ladder. Drops poisoned cross-frame state so the next request
    /// starts clean; the session (and daemon) stay up.
    pub fn restart_pipeline(&mut self) {
        self.pipe.fault = None;
        self.pipe.reset();
        self.metrics.inc("serve.session_restarts");
    }

    /// Applies one request outcome to the health ladder, keeps the
    /// `serve.degraded` and per-session level gauges in step with level
    /// transitions, and emits a `degrade`/`recover` event on each one.
    fn note_outcome(&mut self, fault: bool, request: u64) {
        let before = self.health.level;
        self.health.note(fault);
        let after = self.health.level;
        if before != after {
            let event = if after > before { "degrade" } else { "recover" };
            self.events.emit(
                event,
                self.id,
                Some(request),
                &[
                    ("from", Json::Str(before.as_str().into())),
                    ("to", Json::Str(after.as_str().into())),
                ],
            );
            self.metrics
                .set_gauge(&format!("serve.session.{}.level", self.id), after.rank());
        }
        if before == Level::Full && after != Level::Full {
            self.metrics.adjust_gauge("serve.degraded", 1.0);
        } else if before != Level::Full && after == Level::Full {
            self.metrics.adjust_gauge("serve.degraded", -1.0);
        }
    }

    /// Called when the session closes: settles the degraded gauge and
    /// drops the per-session level gauge from the registry.
    pub fn close(&mut self) {
        if self.health.level != Level::Full {
            self.metrics.adjust_gauge("serve.degraded", -1.0);
            self.health.level = Level::Full;
        }
        self.metrics
            .remove_gauge(&format!("serve.session.{}.level", self.id));
        if self.sharded.take().is_some() {
            self.metrics.remove_gauge("serve.shard_workers");
        }
    }

    /// Watchdog for a render starting now: the configured ceiling, clamped
    /// to the remaining deadline budget (floored so it stays valid).
    fn watchdog_until(&self, deadline: Instant) -> Duration {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.cfg
            .watchdog
            .min(remaining)
            .max(Duration::from_millis(10))
    }

    /// Handles one render request end to end, pushing one response line
    /// per frame (or per failure) onto `out`.
    pub fn handle_render(&mut self, req: &RenderReq, arrived: Instant, out: &mut Vec<Json>) {
        self.metrics.inc("serve.requests");
        self.metrics
            .observe("serve.queue_wait_ms", arrived.elapsed().as_millis() as u64);
        let budget_ms = req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let deadline = arrived + Duration::from_millis(budget_ms);
        if req.fault.is_some() {
            self.metrics.inc("serve.faults_injected");
        }

        // Already expired while queued: an overload symptom, answered
        // without burning budget on a frame nobody can use.
        if Instant::now() >= deadline {
            self.push_deadline_error(req.id, budget_ms, arrived, out);
            self.note_outcome(true, req.id);
            return;
        }

        let level = self.health.level;
        let zoom_scale = if level == Level::Reduced {
            self.cfg.reduced_zoom
        } else {
            1.0
        };
        let [dx, dy, dz] = self.vol.dims;
        let views: Vec<ViewSpec> = (0..req.frames)
            .map(|f| {
                let mut view = ViewSpec::new([dx, dy, dz])
                    .rotate_x(req.angle_x.to_radians())
                    .rotate_y((req.angle_y + f as f64 * req.step).to_radians());
                // Direct field write: the builder asserts on zoom <= 0, but a
                // bad wire value must become a typed error, not a panic.
                view.zoom = req.zoom * zoom_scale;
                view
            })
            .collect();
        for view in &views {
            if let Err(e) = view.try_validate() {
                // The client's view is degenerate: typed error, no health
                // penalty — the session itself is fine.
                out.push(error_response(Some(req.id), &e));
                self.metrics.inc("serve.errors");
                return;
            }
        }

        if level == Level::SerialOnly {
            // Bottom of the quality ladder: no lease, no sheddable work.
            self.metrics.inc("serve.serial_fallbacks");
            let ok = self.serial_frames(req, &views, 0, 1, budget_ms, arrived, deadline, out);
            self.note_outcome(!ok, req.id);
            self.note_brick_cache(req.id);
            return;
        }

        // Multi-process rung: a hello that opted into sharding renders
        // Full-level requests through the worker-process fleet first.
        // Injected faults target the in-process pipeline, so chaos requests
        // skip straight to it; a sharded failure shuts the fleet down and
        // falls through to the ladder for the frames not yet answered.
        let mut next = 0usize;
        let mut shard_fault = false;
        if level == Level::Full && req.fault.is_none() && self.sharded.is_some() {
            match self.sharded_frames(req, &views, &mut next, budget_ms, arrived, deadline, out) {
                Some(clean) => {
                    self.note_outcome(!clean, req.id);
                    self.note_brick_cache(req.id);
                    return;
                }
                None => shard_fault = true,
            }
        }

        let Some(lease) = self.budget.acquire_up_to(self.threads) else {
            // Admission control: the global budget is exhausted — shed.
            self.metrics.inc("serve.shed");
            self.metrics.inc("serve.errors");
            self.events.emit(
                "shed",
                self.id,
                Some(req.id),
                &[("budget_total", Json::U64(self.budget.total() as u64))],
            );
            out.push(error_response(
                Some(req.id),
                &Error::Overloaded {
                    reason: format!(
                        "worker budget exhausted ({} slots all leased)",
                        self.budget.total()
                    ),
                },
            ));
            self.note_outcome(true, req.id);
            return;
        };
        self.metrics
            .set_gauge("serve.budget_in_use", self.budget.in_use() as f64);

        // The retry ladder: parallel, parallel retry, serial, typed error.
        // `next` frames were already answered by the sharded rung, if any.
        let mut fault_event = shard_fault;
        let mut attempt = 1u32;
        loop {
            let outcome = self.parallel_attempt(
                req, &views, &mut next, attempt, level, budget_ms, arrived, deadline, &lease, out,
            );
            match outcome {
                Ok(clean) => {
                    fault_event |= !clean || attempt > 1;
                    break;
                }
                Err(e) if retryable(&e) && attempt == 1 => {
                    self.metrics.inc("serve.retries");
                    self.dump_flight(req.id, e.wire_code());
                    self.events.emit(
                        "retry",
                        self.id,
                        Some(req.id),
                        &[("reason", Json::Str(e.wire_code().into()))],
                    );
                    fault_event = true;
                    attempt = 2;
                }
                Err(e) if retryable(&e) => {
                    // Second parallel failure: fall to the serial rung for
                    // the frames not yet answered.
                    fault_event = true;
                    self.metrics.inc("serve.serial_fallbacks");
                    self.dump_flight(req.id, e.wire_code());
                    self.events.emit(
                        "serial_fallback",
                        self.id,
                        Some(req.id),
                        &[("reason", Json::Str(e.wire_code().into()))],
                    );
                    drop(e);
                    self.serial_frames(req, &views, next, 3, budget_ms, arrived, deadline, out);
                    break;
                }
                Err(e) => {
                    self.dump_flight(req.id, e.wire_code());
                    out.push(error_response(Some(req.id), &e));
                    self.metrics.inc("serve.errors");
                    fault_event = true;
                    break;
                }
            }
        }
        drop(lease);
        self.metrics
            .set_gauge("serve.budget_in_use", self.budget.in_use() as f64);
        self.note_outcome(fault_event, req.id);
        self.note_brick_cache(req.id);
    }

    /// Settles streamed-brick accounting after a request: publishes the
    /// eviction delta this request caused on the shared brick cache, and
    /// emits a `brick_thrash` event when the render's working set exceeded
    /// the resident budget (any eviction means bricks were decoded, thrown
    /// away, and will be decoded again next frame).
    fn note_brick_cache(&mut self, request: u64) {
        let Some(stats) = self.vol.cache_stats() else {
            return;
        };
        self.metrics
            .set_gauge("serve.brick_resident_bytes", stats.resident_bytes as f64);
        let delta = stats.evictions.saturating_sub(self.brick_evictions_seen);
        self.brick_evictions_seen = stats.evictions;
        if delta > 0 {
            self.metrics.add("serve.brick_evictions", delta);
            self.events.emit(
                "brick_thrash",
                self.id,
                Some(request),
                &[
                    ("evictions", Json::U64(delta)),
                    ("budget_bytes", Json::U64(stats.budget_bytes)),
                    ("peak_resident_bytes", Json::U64(stats.peak_resident_bytes)),
                ],
            );
        }
    }

    /// One parallel rung: renders `views[*next..]` through the pipeline,
    /// answering each delivered frame. Returns `Ok(clean)` when every
    /// remaining frame was answered (`clean` = no repair/deadline blemish),
    /// or the typed error that interrupted the animation. A panic anywhere
    /// in the attempt (injected sink faults included) is contained and
    /// returned as [`Error::SessionFailed`]; the pipeline is reset so the
    /// next rung starts from quiescent state.
    #[allow(clippy::too_many_arguments)]
    fn parallel_attempt(
        &mut self,
        req: &RenderReq,
        views: &[ViewSpec],
        next: &mut usize,
        attempt: u32,
        level: Level,
        budget_ms: u64,
        arrived: Instant,
        deadline: Instant,
        lease: &Lease,
        out: &mut Vec<Json>,
    ) -> Result<bool, Error> {
        if *next >= views.len() {
            return Ok(true);
        }
        self.pipe.cfg.nprocs = lease.granted();
        self.pipe.cfg.watchdog_timeout = Some(self.watchdog_until(deadline));
        // Correlation: every span, metric, and flight-recorder entry this
        // attempt produces carries the session and request that caused it.
        self.pipe.correlation = Some(correlate(self.id, req.id));
        if let Some(spec) = &req.fault {
            if attempt == 1 || spec.sticky {
                self.pipe.fault = Some(spec.to_plan());
            }
        }
        let base = *next;
        let degraded_lease = lease.granted() < self.threads;
        let mut blemish = degraded_lease && level == Level::Full;
        let attempt_out = {
            let src = self.vol.as_src();
            let metrics = &self.metrics;
            let events = &self.events;
            let session = self.id;
            let pipe = &mut self.pipe;
            let delivered = &mut *next;
            let responses = &mut *out;
            let blemish = &mut blemish;
            catch_unwind(AssertUnwindSafe(move || {
                pipe.try_render_animation_src(src, &views[base..], |i, img, stats| {
                    let idx = base + i;
                    let elapsed_ms = arrived.elapsed().as_millis() as u64;
                    if Instant::now() >= deadline {
                        metrics.inc("serve.deadline_missed");
                        metrics.inc("serve.errors");
                        events.emit(
                            "deadline_missed",
                            session,
                            Some(req.id),
                            &[("budget_ms", Json::U64(budget_ms))],
                        );
                        responses.push(error_response(
                            Some(req.id),
                            &Error::DeadlineExceeded {
                                budget_ms,
                                elapsed_ms,
                            },
                        ));
                        *blemish = true;
                    } else {
                        let quality = if level == Level::Reduced {
                            Quality::Reduced
                        } else if stats.degraded {
                            Quality::Repaired
                        } else {
                            Quality::Full
                        };
                        if stats.degraded {
                            *blemish = true;
                        }
                        metrics.inc("serve.frames");
                        metrics.inc(&format!("serve.quality.{}", quality.as_str()));
                        metrics.observe("serve.frame_latency_ms", elapsed_ms);
                        responses.push(frame_response(
                            req.id,
                            idx,
                            &img,
                            quality,
                            attempt,
                            stats.degraded,
                            elapsed_ms,
                            req.want_pixels,
                        ));
                    }
                    *delivered = idx + 1;
                })
            }))
        };
        // Detach the per-request fault so a non-sticky (transient) fault
        // cannot re-fire on the retry rung.
        self.pipe.take_fault();
        // Pull whatever telemetry the attempt produced — success, typed
        // error, or contained panic — into the flight recorder *before*
        // any restart clears it, so a post-mortem dump always has the
        // final frames of a dying attempt.
        self.ingest_telemetry(req.id);
        match attempt_out {
            Ok(Ok(())) => Ok(!blemish),
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                // A panic past the pipeline's own containment (delivery
                // stage, response path): reset to quiescent state and let
                // the ladder continue.
                self.restart_pipeline();
                Err(Error::SessionFailed {
                    session: self.id,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Drains the pipeline's harvested frame telemetry into the flight
    /// recorder (stamped with this session and `request`), and derives the
    /// steal-count histogram and per-worker utilization gauges from it.
    fn ingest_telemetry(&mut self, request: u64) {
        let frames = std::mem::take(&mut self.pipe.telemetry);
        for t in &frames {
            self.recorder.record_frame(t, self.id, request);
            self.metrics
                .observe("serve.frame_steals", t.span_count(SpanKind::Steal) as u64);
            self.note_worker_util(t);
        }
    }

    /// Publishes `serve.util.w<p>` gauges: the share of the last frame's
    /// wall time each worker lane spent compositing or warping.
    fn note_worker_util(&self, t: &FrameTelemetry) {
        let dur = t.frame_span.dur();
        if dur == 0 {
            return;
        }
        for w in &t.workers {
            if w.worker == WorkerLog::DRIVER {
                continue;
            }
            let busy = w.kind_total(SpanKind::Composite) + w.kind_total(SpanKind::Warp);
            let pct = (busy as f64 / dur as f64 * 100.0).min(100.0);
            self.metrics
                .set_gauge(&format!("serve.util.w{}", w.worker), pct);
        }
    }

    /// Dumps the flight recorder as a Chrome-trace forensics file into the
    /// configured flight directory, named after the session, request,
    /// and failure reason. Returns the path, or `None` when dumps are
    /// disabled (`flight_dir: None`) or the write failed.
    pub fn dump_flight(&mut self, request: u64, reason: &str) -> Option<String> {
        // Catch up on any telemetry not yet ingested (e.g. a panic path
        // that bypassed the normal attempt tail).
        self.ingest_telemetry(request);
        let dir = self.cfg.flight_dir.clone()?;
        std::fs::create_dir_all(&dir).ok()?;
        self.dump_seq += 1;
        let name = format!(
            "flight-s{}-r{}-{}-{}.json",
            self.id, request, self.dump_seq, reason
        );
        let path = std::path::Path::new(&dir).join(name);
        let doc = self.recorder.chrome_trace(reason);
        std::fs::write(&path, doc.to_string()).ok()?;
        self.metrics.inc("serve.flight_dumps");
        let shown = path.to_string_lossy().into_owned();
        self.events.emit(
            "flight_dump",
            self.id,
            Some(request),
            &[
                ("reason", Json::Str(reason.into())),
                ("path", Json::Str(shown.clone())),
            ],
        );
        Some(shown)
    }

    /// The sharded rung: renders `views[*next..]` through the worker-process
    /// fleet, answering each frame as it lands. Returns `Some(clean)` when
    /// every remaining frame was answered (`clean` = no repair/deadline
    /// blemish). A render failure or contained panic shuts the fleet down,
    /// returns `None`, and leaves `*next` at the first unanswered frame so
    /// the in-process ladder can finish the request.
    #[allow(clippy::too_many_arguments)]
    fn sharded_frames(
        &mut self,
        req: &RenderReq,
        views: &[ViewSpec],
        next: &mut usize,
        budget_ms: u64,
        arrived: Instant,
        deadline: Instant,
        out: &mut Vec<Json>,
    ) -> Option<bool> {
        let mut clean = true;
        for (idx, view) in views.iter().enumerate().skip(*next) {
            if Instant::now() >= deadline {
                self.push_deadline_error(req.id, budget_ms, arrived, out);
                *next = idx + 1;
                clean = false;
                continue;
            }
            let rendered = {
                let sharded = self.sharded.as_mut()?;
                catch_unwind(AssertUnwindSafe(move || sharded.try_render(view)))
            };
            let elapsed_ms = arrived.elapsed().as_millis() as u64;
            match rendered {
                Ok(Ok(img)) => {
                    let (degraded, repaired, tiles, bytes, alive) = {
                        let sharded = self.sharded.as_ref()?;
                        let s = &sharded.last_stats;
                        (
                            s.degraded(),
                            s.repaired_shards.clone(),
                            s.tiles_routed,
                            s.bytes_moved,
                            sharded.alive(),
                        )
                    };
                    let quality = if degraded {
                        Quality::Repaired
                    } else {
                        Quality::Full
                    };
                    if degraded {
                        clean = false;
                        self.events.emit(
                            "shard_repair",
                            self.id,
                            Some(req.id),
                            &[(
                                "repaired",
                                Json::Arr(repaired.iter().map(|&s| Json::U64(s as u64)).collect()),
                            )],
                        );
                    }
                    self.metrics.inc("serve.frames");
                    self.metrics.inc("serve.shard_frames");
                    self.metrics
                        .inc(&format!("serve.quality.{}", quality.as_str()));
                    self.metrics.observe("serve.frame_latency_ms", elapsed_ms);
                    self.metrics.add("serve.shard_tiles_routed", tiles);
                    self.metrics.add("serve.shard_bytes_moved", bytes);
                    self.metrics.set_gauge("serve.shard_workers", alive as f64);
                    out.push(frame_response(
                        req.id,
                        idx,
                        &img,
                        quality,
                        1,
                        degraded,
                        elapsed_ms,
                        req.want_pixels,
                    ));
                    *next = idx + 1;
                }
                Ok(Err(e)) => {
                    // Coordinator-level failure (every repair rung inside the
                    // fleet already failed): shut the fleet down and let the
                    // in-process ladder take over from this frame.
                    self.metrics.inc("serve.shard_fallbacks");
                    self.events.emit(
                        "shard_fallback",
                        self.id,
                        Some(req.id),
                        &[("reason", Json::Str(e.wire_code().into()))],
                    );
                    self.sharded = None;
                    self.metrics.remove_gauge("serve.shard_workers");
                    return None;
                }
                Err(payload) => {
                    self.metrics.inc("serve.shard_fallbacks");
                    self.events.emit(
                        "shard_fallback",
                        self.id,
                        Some(req.id),
                        &[("reason", Json::Str(panic_message(payload.as_ref())))],
                    );
                    self.sharded = None;
                    self.metrics.remove_gauge("serve.shard_workers");
                    return None;
                }
            }
        }
        Some(clean)
    }

    /// The serial rung (and the whole of `SerialOnly` mode): renders
    /// `views[from..]` one frame at a time on the session thread, bounded
    /// by the deadline. Returns whether every frame was answered cleanly.
    #[allow(clippy::too_many_arguments)]
    fn serial_frames(
        &mut self,
        req: &RenderReq,
        views: &[ViewSpec],
        from: usize,
        attempt: u32,
        budget_ms: u64,
        arrived: Instant,
        deadline: Instant,
        out: &mut Vec<Json>,
    ) -> bool {
        let mut clean = true;
        for (idx, view) in views.iter().enumerate().skip(from) {
            if Instant::now() >= deadline {
                self.push_deadline_error(req.id, budget_ms, arrived, out);
                clean = false;
                continue;
            }
            let rendered = {
                let src = self.vol.as_src();
                let serial = &mut self.serial;
                catch_unwind(AssertUnwindSafe(move || serial.try_render_src(src, view)))
            };
            let elapsed_ms = arrived.elapsed().as_millis() as u64;
            match rendered {
                Ok(Ok(img)) => {
                    self.metrics.inc("serve.frames");
                    self.metrics.inc("serve.quality.serial");
                    self.metrics.observe("serve.frame_latency_ms", elapsed_ms);
                    out.push(frame_response(
                        req.id,
                        idx,
                        &img,
                        Quality::Serial,
                        attempt,
                        false,
                        elapsed_ms,
                        req.want_pixels,
                    ));
                }
                Ok(Err(e)) => {
                    self.metrics.inc("serve.errors");
                    out.push(error_response(Some(req.id), &e));
                    clean = false;
                }
                Err(payload) => {
                    // Even the serial rung panicking must not take the
                    // session down: typed error, supervisor counts it.
                    self.metrics.inc("serve.errors");
                    self.metrics.inc("serve.session_restarts");
                    out.push(error_response(
                        Some(req.id),
                        &Error::SessionFailed {
                            session: self.id,
                            message: panic_message(payload.as_ref()),
                        },
                    ));
                    clean = false;
                }
            }
        }
        clean
    }

    fn push_deadline_error(&self, id: u64, budget_ms: u64, arrived: Instant, out: &mut Vec<Json>) {
        self.metrics.inc("serve.deadline_missed");
        self.metrics.inc("serve.errors");
        self.events.emit(
            "deadline_missed",
            self.id,
            Some(id),
            &[("budget_ms", Json::U64(budget_ms))],
        );
        out.push(error_response(
            Some(id),
            &Error::DeadlineExceeded {
                budget_ms,
                elapsed_ms: arrived.elapsed().as_millis() as u64,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{VolumeCache, VolumeKey};
    use crate::protocol::FaultSpec;
    use std::sync::Once;

    fn quiet_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            std::panic::set_hook(Box::new(|_| {}));
        });
    }

    fn test_session(budget: Arc<WorkerBudget>, metrics: ServeMetrics) -> Session {
        let cache = VolumeCache::new();
        let enc = cache
            .get(&VolumeKey::flat("mri", 20, 11, ""))
            .expect("phantom encodes");
        let cfg = Arc::new(ServeConfig {
            degrade_after: 2,
            recover_after: 2,
            flight_dir: None,
            ..ServeConfig::default()
        });
        Session::new(1, enc, 2, cfg, budget, metrics, EventLog::in_memory())
    }

    fn render_req(id: u64) -> RenderReq {
        RenderReq {
            id,
            angle_x: 12.0,
            angle_y: 30.0,
            zoom: 1.0,
            frames: 1,
            step: 3.0,
            deadline_ms: Some(60_000),
            want_pixels: false,
            fault: None,
        }
    }

    fn first_type(out: &[Json]) -> &str {
        out[0].get("type").and_then(Json::as_str).expect("typed")
    }

    #[test]
    fn clean_request_renders_full_quality() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut out = Vec::new();
        s.handle_render(&render_req(1), Instant::now(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("full"));
        assert_eq!(m.counter("serve.frames"), 1);
        assert_eq!(s.level(), Level::Full);
    }

    #[test]
    fn exhausted_budget_sheds_and_steps_the_ladder_down() {
        let m = ServeMetrics::new();
        let budget = WorkerBudget::new(2);
        let hog = budget.acquire_up_to(2).expect("hog the whole budget");
        let mut s = test_session(Arc::clone(&budget), m.clone());
        // Two consecutive sheds step Full -> Reduced; two more step
        // Reduced -> SerialOnly, where rendering succeeds without a lease.
        for id in 0..4 {
            let mut out = Vec::new();
            s.handle_render(&render_req(id), Instant::now(), &mut out);
            assert_eq!(first_type(&out), "error");
            assert_eq!(
                out[0].get("code").and_then(Json::as_str),
                Some("overloaded")
            );
        }
        assert_eq!(m.counter("serve.shed"), 4);
        assert_eq!(s.level(), Level::SerialOnly);
        assert_eq!(m.gauge("serve.degraded"), Some(1.0));
        let mut out = Vec::new();
        s.handle_render(&render_req(9), Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("serial"));
        // Load drops: consecutive healthy serial frames climb back to
        // Full (2 to reach Reduced, 2 more to reach Full).
        drop(hog);
        for id in 10..13 {
            let mut out = Vec::new();
            s.handle_render(&render_req(id), Instant::now(), &mut out);
            assert_eq!(first_type(&out), "frame");
        }
        assert_eq!(s.level(), Level::Full);
        assert_eq!(m.gauge("serve.degraded"), Some(0.0));
    }

    #[test]
    fn transient_fault_recovers_on_the_parallel_retry() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(5);
        // A truncated queue stalls the scheduler (no panic, rows provably
        // lost); non-sticky, so the retry rung renders clean.
        req.fault = Some(FaultSpec {
            truncate_queue: Some(1000),
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("attempts").and_then(Json::as_u64), Some(2));
        assert_eq!(m.counter("serve.retries"), 1);
        assert_eq!(m.counter("serve.serial_fallbacks"), 0);
    }

    #[test]
    fn sticky_fault_walks_the_whole_ladder_to_serial() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(6);
        req.fault = Some(FaultSpec {
            truncate_queue: Some(1000),
            sticky: true,
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("serial"));
        assert_eq!(out[0].get("attempts").and_then(Json::as_u64), Some(3));
        assert_eq!(m.counter("serve.retries"), 1);
        assert_eq!(m.counter("serve.serial_fallbacks"), 1);
    }

    #[test]
    fn sink_fault_is_contained_and_retried() {
        quiet_panics();
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(7);
        req.fault = Some(FaultSpec {
            panic_sink_at: Some(0),
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(m.counter("serve.session_restarts"), 1);
        assert_eq!(m.counter("serve.retries"), 1);
    }

    #[test]
    fn expired_deadline_is_refused_without_rendering() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(8);
        req.deadline_ms = Some(1);
        let arrived = Instant::now() - Duration::from_millis(50);
        let mut out = Vec::new();
        s.handle_render(&req, arrived, &mut out);
        assert_eq!(first_type(&out), "error");
        assert_eq!(
            out[0].get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(m.counter("serve.deadline_missed"), 1);
        assert_eq!(m.counter("serve.frames"), 0);
    }

    #[test]
    fn degenerate_view_is_a_typed_error_without_health_penalty() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(9);
        req.zoom = 0.0;
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(first_type(&out), "error");
        assert_eq!(
            out[0].get("code").and_then(Json::as_str),
            Some("invalid_view")
        );
        assert_eq!(s.level(), Level::Full);
    }

    #[test]
    fn retry_rung_dumps_a_correlated_flight_trace_and_emits_events() {
        quiet_panics();
        let dir = std::env::temp_dir().join(format!("swr-flight-session-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let m = ServeMetrics::new();
        let events = EventLog::in_memory();
        let cache = VolumeCache::new();
        let enc = cache
            .get(&VolumeKey::flat("mri", 20, 11, ""))
            .expect("phantom encodes");
        let cfg = Arc::new(ServeConfig {
            degrade_after: 2,
            recover_after: 2,
            flight_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        let mut s = Session::new(
            3,
            enc,
            2,
            cfg,
            WorkerBudget::new(4),
            m.clone(),
            events.clone(),
        );
        let mut req = render_req(21);
        req.fault = Some(FaultSpec {
            truncate_queue: Some(1000),
            ..FaultSpec::default()
        });
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(m.counter("serve.flight_dumps"), 1);

        let retry = events.recent_of("retry");
        assert_eq!(retry.len(), 1);
        assert_eq!(
            retry[0].get("reason").and_then(Json::as_str),
            Some("stalled")
        );
        assert_eq!(retry[0].get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(retry[0].get("request").and_then(Json::as_u64), Some(21));

        let dumps = events.recent_of("flight_dump");
        assert_eq!(dumps.len(), 1);
        let path = dumps[0].get("path").and_then(Json::as_str).expect("path");
        let doc = Json::parse(&std::fs::read_to_string(path).expect("dump file exists"))
            .expect("dump is JSON");
        swr_telemetry::validate_chrome_trace(&doc).expect("dump is a valid chrome trace");
        let trace_events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        let x = trace_events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("at least one span recorded");
        let args = x.get("args").expect("args");
        assert_eq!(args.get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(args.get("request").and_then(Json::as_u64), Some(21));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_close_drops_the_per_session_level_gauge() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        assert_eq!(m.gauge("serve.session.1.level"), Some(0.0));
        s.close();
        assert_eq!(m.gauge("serve.session.1.level"), None);
    }

    #[test]
    fn thrashing_brick_cache_counts_evictions_and_emits_the_event() {
        let m = ServeMetrics::new();
        let events = EventLog::in_memory();
        let cache = VolumeCache::new();
        // A budget far below one slice's working set: every frame decodes,
        // evicts, and re-decodes bricks.
        let vol = cache
            .get(&VolumeKey {
                layout: "bricked".into(),
                brick: 8,
                resident_bytes: 1,
                ..VolumeKey::flat("mri", 24, 11, "")
            })
            .expect("streamed bricked dataset");
        let cfg = Arc::new(ServeConfig {
            flight_dir: None,
            ..ServeConfig::default()
        });
        let mut s = Session::new(
            7,
            vol,
            2,
            cfg,
            WorkerBudget::new(4),
            m.clone(),
            events.clone(),
        );
        let mut out = Vec::new();
        s.handle_render(&render_req(1), Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert_eq!(out[0].get("quality").and_then(Json::as_str), Some("full"));
        assert!(
            m.counter("serve.brick_evictions") > 0,
            "a 1-byte budget must evict"
        );
        let thrash = events.recent_of("brick_thrash");
        assert_eq!(thrash.len(), 1, "{thrash:?}");
        assert_eq!(thrash[0].get("session").and_then(Json::as_u64), Some(7));
        assert_eq!(thrash[0].get("request").and_then(Json::as_u64), Some(1));
        assert!(
            thrash[0]
                .get("evictions")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
        // A second request attributes only its own delta.
        let seen = m.counter("serve.brick_evictions");
        let mut out = Vec::new();
        s.handle_render(&render_req(2), Instant::now(), &mut out);
        assert_eq!(first_type(&out), "frame");
        assert!(m.counter("serve.brick_evictions") > seen);
        assert_eq!(events.recent_of("brick_thrash").len(), 2);
    }

    #[test]
    fn multi_frame_request_answers_every_frame_in_order() {
        let m = ServeMetrics::new();
        let mut s = test_session(WorkerBudget::new(4), m.clone());
        let mut req = render_req(10);
        req.frames = 3;
        let mut out = Vec::new();
        s.handle_render(&req, Instant::now(), &mut out);
        assert_eq!(out.len(), 3);
        for (i, resp) in out.iter().enumerate() {
            assert_eq!(resp.get("frame").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(resp.get("id").and_then(Json::as_u64), Some(10));
        }
        assert_eq!(m.counter("serve.frames"), 3);
    }
}
