//! Session-level caching of classified, run-length-encoded volumes.
//!
//! Classification + encoding dominates session start-up, and concurrent
//! sessions frequently view the same dataset (the MovieMaker shape: many
//! clients, one simulation). The cache shares one encoded dataset per
//! distinct `(phantom, base, seed, transfer, layout)` so N sessions pay
//! for one encode; entries are `Arc`s, so an evicted-then-reinserted entry
//! never invalidates a session already holding it.
//!
//! The key carries the full *storage layout* discriminant: a bricked
//! dataset and a flat one are different cache entries even for the same
//! phantom, as are two streamed datasets with different resident budgets —
//! sharing a byte-budgeted [`BrickCache`](swr_volume::BrickCache) between
//! sessions that asked for different budgets would let one session's
//! working set evict another's.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use swr_error::Error;
use swr_render::VolumeSrc;
use swr_volume::{
    classify, BrickCacheStats, BrickedVolume, EncodedVolume, Phantom, TransferFunction,
    DEFAULT_BRICK_EXTENT,
};

/// Brick edge length the service uses when a `hello` names the bricked
/// layout without a `brick` field.
pub const DEFAULT_SERVE_BRICK: usize = DEFAULT_BRICK_EXTENT;

/// Identity of one cacheable dataset, storage layout included.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VolumeKey {
    /// Phantom name (`mri`, `ct`, `ellipsoid`).
    pub phantom: String,
    /// Base resolution.
    pub base: usize,
    /// Generator seed.
    pub seed: u64,
    /// Transfer preset name (empty = the phantom's default).
    pub transfer: String,
    /// Storage layout: `flat` (per-axis RLE) or `bricked`.
    pub layout: String,
    /// Brick edge length for the bricked layout (ignored for flat).
    pub brick: usize,
    /// Resident-set byte budget for the bricked layout; `0` keeps every
    /// brick resident, nonzero streams bricks through a clock cache.
    pub resident_bytes: u64,
}

impl VolumeKey {
    /// A flat-layout key (the pre-layout-aware default).
    pub fn flat(phantom: &str, base: usize, seed: u64, transfer: &str) -> Self {
        VolumeKey {
            phantom: phantom.into(),
            base,
            seed,
            transfer: transfer.into(),
            layout: "flat".into(),
            brick: DEFAULT_BRICK_EXTENT,
            resident_bytes: 0,
        }
    }
}

/// One cached dataset in whichever storage layout its key named.
#[derive(Debug)]
pub enum CachedLayout {
    /// Flat per-axis RLE.
    Flat(EncodedVolume),
    /// Bricked per-axis RLE, possibly streamed under a byte budget.
    Bricked(BrickedVolume),
}

/// A shared dataset: the encoded volume (in its layout) plus dimensions.
#[derive(Debug)]
pub struct CachedDataset {
    /// Voxel dimensions.
    pub dims: [usize; 3],
    layout: CachedLayout,
}

impl CachedDataset {
    /// The dataset as a renderer-facing [`VolumeSrc`].
    pub fn as_src(&self) -> VolumeSrc<'_> {
        match &self.layout {
            CachedLayout::Flat(enc) => VolumeSrc::Flat(enc),
            CachedLayout::Bricked(b) => VolumeSrc::Bricked(b),
        }
    }

    /// Stable layout name (`flat` / `bricked`).
    pub fn layout_name(&self) -> &'static str {
        match &self.layout {
            CachedLayout::Flat(_) => "flat",
            CachedLayout::Bricked(_) => "bricked",
        }
    }

    /// Brick-cache counters, when this dataset streams bricks on demand.
    pub fn cache_stats(&self) -> Option<BrickCacheStats> {
        match &self.layout {
            CachedLayout::Flat(_) => None,
            CachedLayout::Bricked(b) => b.cache_stats(),
        }
    }
}

/// A shared, encoded dataset handle.
pub type CachedVolume = Arc<CachedDataset>;

/// Shared cache of encoded volumes, keyed by [`VolumeKey`].
#[derive(Debug, Default)]
pub struct VolumeCache {
    entries: Mutex<HashMap<VolumeKey, CachedVolume>>,
}

/// Bound on cached datasets; oldest-insertion order is not tracked, so on
/// overflow the cache is simply cleared (sessions keep their `Arc`s).
const CACHE_CAP: usize = 16;

impl VolumeCache {
    /// An empty cache.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the dataset for `key`, generating, classifying, and (for
    /// bricked keys) re-bricking it on first use. Unknown phantom,
    /// transfer, or layout names are typed protocol errors.
    pub fn get(&self, key: &VolumeKey) -> Result<CachedVolume, Error> {
        let mut entries = self.entries.lock();
        if let Some(hit) = entries.get(key) {
            return Ok(Arc::clone(hit));
        }
        let phantom = match key.phantom.as_str() {
            "mri" => Phantom::MriBrain,
            "ct" => Phantom::CtHead,
            "ellipsoid" => Phantom::SolidEllipsoid,
            other => {
                return Err(Error::Protocol {
                    reason: format!("unknown phantom {other:?} (want mri|ct|ellipsoid)"),
                })
            }
        };
        if key.base == 0 {
            return Err(Error::Protocol {
                reason: "phantom base must be >= 1".into(),
            });
        }
        let tf = match key.transfer.as_str() {
            "" => phantom.default_transfer(),
            "mri" => TransferFunction::mri_default(),
            "ct" => TransferFunction::ct_default(),
            "opaque" => TransferFunction::opaque_nonzero(),
            other => {
                return Err(Error::Protocol {
                    reason: format!("unknown transfer {other:?} (want mri|ct|opaque)"),
                })
            }
        };
        let dims = phantom.paper_dims(key.base);
        let vol = phantom.generate(dims, key.seed);
        let enc = EncodedVolume::encode(&classify(&vol, &tf));
        let layout = match key.layout.as_str() {
            "flat" => CachedLayout::Flat(enc),
            "bricked" if key.brick == 0 => {
                return Err(Error::Protocol {
                    reason: "brick extent must be >= 1".into(),
                })
            }
            "bricked" if key.resident_bytes == 0 => {
                CachedLayout::Bricked(BrickedVolume::from_encoded(&enc, key.brick))
            }
            "bricked" => CachedLayout::Bricked(
                BrickedVolume::from_encoded_streamed(&enc, key.brick, key.resident_bytes)
                    .map_err(Error::from)?,
            ),
            other => {
                return Err(Error::Protocol {
                    reason: format!("unknown layout {other:?} (want flat|bricked)"),
                })
            }
        };
        let entry = Arc::new(CachedDataset { dims, layout });
        if entries.len() >= CACHE_CAP {
            entries.clear();
        }
        entries.insert(key.clone(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_share_one_encode() {
        let cache = VolumeCache::new();
        let key = VolumeKey::flat("mri", 16, 7, "");
        let a = cache.get(&key).expect("first get encodes");
        let b = cache.get(&key).expect("second get hits");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.dims, Phantom::MriBrain.paper_dims(16));
        assert_eq!(a.layout_name(), "flat");
        assert!(a.cache_stats().is_none());
    }

    #[test]
    fn layout_is_part_of_the_key() {
        let cache = VolumeCache::new();
        let flat = cache.get(&VolumeKey::flat("mri", 16, 7, "")).expect("flat");
        let bricked = cache
            .get(&VolumeKey {
                layout: "bricked".into(),
                brick: 8,
                ..VolumeKey::flat("mri", 16, 7, "")
            })
            .expect("bricked");
        assert_eq!(cache.len(), 2, "flat and bricked are distinct entries");
        assert_eq!(flat.layout_name(), "flat");
        assert_eq!(bricked.layout_name(), "bricked");
        assert_eq!(flat.dims, bricked.dims);
        // Resident (unstreamed) bricked datasets have no cache to count.
        assert!(bricked.cache_stats().is_none());
    }

    #[test]
    fn streamed_bricked_dataset_reports_cache_stats() {
        let cache = VolumeCache::new();
        let vol = cache
            .get(&VolumeKey {
                layout: "bricked".into(),
                brick: 8,
                resident_bytes: 4096,
                ..VolumeKey::flat("mri", 16, 7, "")
            })
            .expect("streamed bricked");
        let stats = vol.cache_stats().expect("streamed layout has a cache");
        assert!(stats.budget_bytes >= 4096);
    }

    #[test]
    fn bad_names_are_protocol_errors() {
        let cache = VolumeCache::new();
        let e = cache
            .get(&VolumeKey::flat("voxelzilla", 16, 0, ""))
            .expect_err("unknown phantom");
        assert!(matches!(e, Error::Protocol { .. }), "{e}");
        let e = cache
            .get(&VolumeKey::flat("mri", 16, 0, "xray"))
            .expect_err("unknown transfer");
        assert!(matches!(e, Error::Protocol { .. }), "{e}");
        let e = cache
            .get(&VolumeKey {
                layout: "holographic".into(),
                ..VolumeKey::flat("mri", 16, 0, "")
            })
            .expect_err("unknown layout");
        assert!(matches!(e, Error::Protocol { .. }), "{e}");
        assert!(cache.is_empty());
    }
}
