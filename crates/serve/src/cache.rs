//! Session-level caching of classified, run-length-encoded volumes.
//!
//! Classification + encoding dominates session start-up, and concurrent
//! sessions frequently view the same dataset (the MovieMaker shape: many
//! clients, one simulation). The cache shares one [`EncodedVolume`] per
//! distinct `(phantom, base, seed, transfer)` so N sessions pay for one
//! encode; entries are `Arc`s, so an evicted-then-reinserted entry never
//! invalidates a session already holding it.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use swr_error::Error;
use swr_volume::{classify, EncodedVolume, Phantom, TransferFunction};

/// Identity of one cacheable dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VolumeKey {
    /// Phantom name (`mri`, `ct`, `ellipsoid`).
    pub phantom: String,
    /// Base resolution.
    pub base: usize,
    /// Generator seed.
    pub seed: u64,
    /// Transfer preset name (empty = the phantom's default).
    pub transfer: String,
}

/// A shared, encoded dataset: the RLE volume plus its voxel dimensions.
pub type CachedVolume = Arc<(EncodedVolume, [usize; 3])>;

/// Shared cache of encoded volumes, keyed by [`VolumeKey`].
#[derive(Debug, Default)]
pub struct VolumeCache {
    entries: Mutex<HashMap<VolumeKey, CachedVolume>>,
}

/// Bound on cached datasets; oldest-insertion order is not tracked, so on
/// overflow the cache is simply cleared (sessions keep their `Arc`s).
const CACHE_CAP: usize = 16;

impl VolumeCache {
    /// An empty cache.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the encoded volume (and its dims) for `key`, generating and
    /// classifying it on first use. Unknown phantom or transfer names are
    /// typed protocol errors.
    pub fn get(&self, key: &VolumeKey) -> Result<CachedVolume, Error> {
        let mut entries = self.entries.lock();
        if let Some(hit) = entries.get(key) {
            return Ok(Arc::clone(hit));
        }
        let phantom = match key.phantom.as_str() {
            "mri" => Phantom::MriBrain,
            "ct" => Phantom::CtHead,
            "ellipsoid" => Phantom::SolidEllipsoid,
            other => {
                return Err(Error::Protocol {
                    reason: format!("unknown phantom {other:?} (want mri|ct|ellipsoid)"),
                })
            }
        };
        if key.base == 0 {
            return Err(Error::Protocol {
                reason: "phantom base must be >= 1".into(),
            });
        }
        let tf = match key.transfer.as_str() {
            "" => phantom.default_transfer(),
            "mri" => TransferFunction::mri_default(),
            "ct" => TransferFunction::ct_default(),
            "opaque" => TransferFunction::opaque_nonzero(),
            other => {
                return Err(Error::Protocol {
                    reason: format!("unknown transfer {other:?} (want mri|ct|opaque)"),
                })
            }
        };
        let dims = phantom.paper_dims(key.base);
        let vol = phantom.generate(dims, key.seed);
        let enc = EncodedVolume::encode(&classify(&vol, &tf));
        let entry = Arc::new((enc, dims));
        if entries.len() >= CACHE_CAP {
            entries.clear();
        }
        entries.insert(key.clone(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_share_one_encode() {
        let cache = VolumeCache::new();
        let key = VolumeKey {
            phantom: "mri".into(),
            base: 16,
            seed: 7,
            transfer: String::new(),
        };
        let a = cache.get(&key).expect("first get encodes");
        let b = cache.get(&key).expect("second get hits");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.1, Phantom::MriBrain.paper_dims(16));
    }

    #[test]
    fn bad_names_are_protocol_errors() {
        let cache = VolumeCache::new();
        let e = cache
            .get(&VolumeKey {
                phantom: "voxelzilla".into(),
                base: 16,
                seed: 0,
                transfer: String::new(),
            })
            .expect_err("unknown phantom");
        assert!(matches!(e, Error::Protocol { .. }), "{e}");
        let e = cache
            .get(&VolumeKey {
                phantom: "mri".into(),
                base: 16,
                seed: 0,
                transfer: "xray".into(),
            })
            .expect_err("unknown transfer");
        assert!(matches!(e, Error::Protocol { .. }), "{e}");
        assert!(cache.is_empty());
    }
}
