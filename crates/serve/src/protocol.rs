//! The `swr-serve/1` wire protocol: one JSON object per line, both ways.
//!
//! Requests are parsed with the same hand-rolled [`Json`] the telemetry
//! exporters emit, so the service has no serialization dependency. Every
//! response carries `"ok"` and `"type"`; error responses carry the typed
//! [`enum@Error`]'s stable [`wire code`](Error::wire_code) in `"code"` so
//! clients route on a token, never on `Display` text.
//!
//! ```text
//! -> {"op":"hello","phantom":"mri","base":24,"seed":11,"threads":2}
//! <- {"ok":true,"type":"hello","session":1,"protocol":"swr-serve/1"}
//! -> {"op":"render","id":7,"angle_y":30.0,"deadline_ms":5000}
//! <- {"ok":true,"type":"frame","id":7,"frame":0,"width":40,"height":40,
//!     "quality":"full","attempts":1,"hash":"184f1f8061ff92b4"}
//! ```
//!
//! Frame payloads are hashed (and optionally shipped) as the raw RGBA
//! byte stream of the final image, so "bit-identical to the serial
//! renderer" is checkable across the socket.

use swr_error::Error;
use swr_render::FinalImage;
use swr_telemetry::Json;

/// Protocol identifier sent in the hello response.
pub const PROTOCOL: &str = "swr-serve/1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session: names the scene and the desired worker count.
    Hello(HelloReq),
    /// Renders one or more frames.
    Render(RenderReq),
    /// Returns the service-wide metrics registry as JSON.
    Stats,
    /// Returns the Prometheus text exposition of the service metrics.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Closes the session cleanly.
    Bye,
}

/// The session-opening request.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloReq {
    /// Phantom name: `mri`, `ct`, or `ellipsoid`.
    pub phantom: String,
    /// Phantom base resolution.
    pub base: usize,
    /// Phantom seed.
    pub seed: u64,
    /// Transfer-function preset (`mri`, `ct`, `opaque`); defaults to the
    /// phantom's own default when absent.
    pub transfer: Option<String>,
    /// Worker threads requested for this session's parallel renders
    /// (clamped by the server; the global budget may grant fewer).
    pub threads: Option<usize>,
    /// Storage layout (`flat` | `bricked`); defaults to `flat`, or to
    /// `bricked` when a resident budget is requested.
    pub layout: Option<String>,
    /// Brick edge length for the bricked layout (server default: 32).
    pub brick: Option<usize>,
    /// Stream bricks under a resident byte budget of this many MiB.
    pub resident_mb: Option<u64>,
    /// Render through this many `swr-shard` worker processes instead of
    /// in-process threads (flat layout only; falls back to the in-process
    /// ladder when the worker binary is unavailable).
    pub shards: Option<usize>,
    /// Tile transport for the sharded path (`shm` | `socket`); defaults
    /// to shared memory.
    pub shard_transport: Option<String>,
}

/// A frame-render request.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderReq {
    /// Client-chosen id echoed on every response to this request.
    pub id: u64,
    /// View angles in degrees.
    pub angle_x: f64,
    /// View angles in degrees.
    pub angle_y: f64,
    /// Zoom factor (the quality ladder may scale it down).
    pub zoom: f64,
    /// Frames to render through the animation pipeline (default 1).
    pub frames: usize,
    /// Per-frame Y-rotation step in degrees for multi-frame requests.
    pub step: f64,
    /// Deadline budget in milliseconds, measured from arrival; the
    /// server default applies when absent.
    pub deadline_ms: Option<u64>,
    /// Ship the full pixel payload (hex) with each frame, not just the
    /// hash.
    pub want_pixels: bool,
    /// Chaos hook: a deterministic fault to inject into this request's
    /// render.
    pub fault: Option<FaultSpec>,
}

/// A wire-specified [`swr_core::FaultPlan`], for chaos-testing a live
/// service end to end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for the profile scrambler.
    pub seed: u64,
    /// Panic the worker claiming this compositing task.
    pub panic_at_task: Option<u64>,
    /// Panic the worker warping this band.
    pub panic_warp_at: Option<u64>,
    /// Panic the delivery stage at this delivered frame.
    pub panic_sink_at: Option<u64>,
    /// Scramble the work profile before partitioning.
    pub corrupt_profile: bool,
    /// Zero the work profile before partitioning.
    pub zero_profile: bool,
    /// Drop this many chunks from worker 0's queue.
    pub truncate_queue: Option<usize>,
    /// Keep the fault armed across the retry ladder's parallel retry
    /// (default: the fault is detached after the first attempt, modelling
    /// a transient). A sticky fault forces the ladder down to serial.
    pub sticky: bool,
}

impl FaultSpec {
    /// Builds the core fault plan this spec describes.
    pub fn to_plan(&self) -> swr_core::FaultPlan {
        let mut plan = swr_core::FaultPlan::new(self.seed);
        plan.panic_at_task = self.panic_at_task;
        plan.panic_warp_at = self.panic_warp_at;
        plan.panic_sink_at = self.panic_sink_at;
        plan.corrupt_profile = self.corrupt_profile;
        plan.zero_profile = self.zero_profile;
        plan.truncate_queue = self.truncate_queue;
        plan
    }
}

fn proto_err(reason: impl Into<String>) -> Error {
    Error::Protocol {
        reason: reason.into(),
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<Option<u64>, Error> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| proto_err(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn get_f64(obj: &Json, key: &str) -> Result<Option<f64>, Error> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| proto_err(format!("field {key:?} must be a number"))),
    }
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, Error> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(proto_err(format!("field {key:?} must be a boolean"))),
    }
}

impl Request {
    /// Parses one protocol line. Malformed lines are a typed
    /// [`Error::Protocol`], which the server answers without dropping the
    /// session.
    pub fn parse(line: &str) -> Result<Request, Error> {
        let v = Json::parse(line.trim()).map_err(|e| proto_err(format!("bad JSON: {e}")))?;
        if v.as_obj().is_none() {
            return Err(proto_err("request must be a JSON object"));
        }
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| proto_err("missing string field \"op\""))?;
        match op {
            "hello" => Ok(Request::Hello(HelloReq {
                phantom: v
                    .get("phantom")
                    .and_then(Json::as_str)
                    .unwrap_or("mri")
                    .to_string(),
                base: get_u64(&v, "base")?.unwrap_or(24) as usize,
                seed: get_u64(&v, "seed")?.unwrap_or(42),
                transfer: v.get("transfer").and_then(Json::as_str).map(String::from),
                threads: get_u64(&v, "threads")?.map(|t| t as usize),
                layout: v.get("layout").and_then(Json::as_str).map(String::from),
                brick: get_u64(&v, "brick")?.map(|b| b as usize),
                resident_mb: get_u64(&v, "resident_mb")?,
                shards: get_u64(&v, "shards")?.map(|s| s as usize),
                shard_transport: v
                    .get("shard_transport")
                    .and_then(Json::as_str)
                    .map(String::from),
            })),
            "render" => {
                let fault = match v.get("fault") {
                    None | Some(Json::Null) => None,
                    Some(f) if f.as_obj().is_some() => Some(FaultSpec {
                        seed: get_u64(f, "seed")?.unwrap_or(0),
                        panic_at_task: get_u64(f, "panic_at_task")?,
                        panic_warp_at: get_u64(f, "panic_warp_at")?,
                        panic_sink_at: get_u64(f, "panic_sink_at")?,
                        corrupt_profile: get_bool(f, "corrupt_profile")?,
                        zero_profile: get_bool(f, "zero_profile")?,
                        truncate_queue: get_u64(f, "truncate_queue")?.map(|n| n as usize),
                        sticky: get_bool(f, "sticky")?,
                    }),
                    Some(_) => return Err(proto_err("field \"fault\" must be an object")),
                };
                Ok(Request::Render(RenderReq {
                    id: get_u64(&v, "id")?.ok_or_else(|| proto_err("render needs an \"id\""))?,
                    angle_x: get_f64(&v, "angle_x")?.unwrap_or(15.0),
                    angle_y: get_f64(&v, "angle_y")?.unwrap_or(30.0),
                    zoom: get_f64(&v, "zoom")?.unwrap_or(1.0),
                    frames: get_u64(&v, "frames")?.unwrap_or(1).max(1) as usize,
                    step: get_f64(&v, "step")?.unwrap_or(3.0),
                    deadline_ms: get_u64(&v, "deadline_ms")?,
                    want_pixels: get_bool(&v, "want_pixels")?,
                    fault,
                }))
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "bye" => Ok(Request::Bye),
            other => Err(proto_err(format!("unknown op {other:?}"))),
        }
    }
}

/// The quality a frame response reports, mirroring the session's ladder
/// level and the repair path the frame actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Parallel path, no repair, full output dimensions.
    Full,
    /// Parallel path, one or more worker panics repaired bit-identically.
    Repaired,
    /// Rendered at the ladder's reduced output dimensions.
    Reduced,
    /// Rendered on the serial fallback (bottom of the ladder).
    Serial,
}

impl Quality {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            Quality::Full => "full",
            Quality::Repaired => "repaired",
            Quality::Reduced => "reduced",
            Quality::Serial => "serial",
        }
    }
}

/// The row-major RGBA byte stream of the final image — the exact payload
/// [`image_hash`] digests, so equality of these bytes is bit-identity of
/// the image.
pub fn image_bytes(img: &FinalImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.pixels().len() * 4);
    for p in img.pixels() {
        out.extend_from_slice(p);
    }
    out
}

/// FNV-1a 64 over [`image_bytes`], rendered as 16 hex digits.
pub fn image_hash(img: &FinalImage) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in image_bytes(img) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Lowercase hex of [`image_bytes`] (the optional `pixels` field).
pub fn image_hex(img: &FinalImage) -> String {
    let bytes = image_bytes(img);
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// `{"ok":true,"type":"hello",...}` — the session is open.
pub fn hello_response(session: u64, granted_threads: usize, budget_total: usize) -> Json {
    Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("hello".into()))
        .with("protocol", Json::Str(PROTOCOL.into()))
        .with("session", Json::U64(session))
        .with("threads", Json::U64(granted_threads as u64))
        .with("budget_total", Json::U64(budget_total as u64))
}

/// `{"ok":true,"type":"frame",...}` — one delivered frame.
#[allow(clippy::too_many_arguments)]
pub fn frame_response(
    id: u64,
    frame: usize,
    img: &FinalImage,
    quality: Quality,
    attempts: u32,
    repaired: bool,
    elapsed_ms: u64,
    want_pixels: bool,
) -> Json {
    let mut resp = Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("frame".into()))
        .with("id", Json::U64(id))
        .with("frame", Json::U64(frame as u64))
        .with("width", Json::U64(img.width() as u64))
        .with("height", Json::U64(img.height() as u64))
        .with("quality", Json::Str(quality.as_str().into()))
        .with("attempts", Json::U64(u64::from(attempts)))
        .with("repaired", Json::Bool(repaired))
        .with("elapsed_ms", Json::U64(elapsed_ms))
        .with("hash", Json::Str(image_hash(img)));
    if want_pixels {
        resp.set("pixels", Json::Str(image_hex(img)));
    }
    resp
}

/// `{"ok":false,"type":"error",...}` — a typed refusal or failure. `id` is
/// echoed when the error is attributable to one request.
pub fn error_response(id: Option<u64>, e: &Error) -> Json {
    let mut resp = Json::obj()
        .with("ok", Json::Bool(false))
        .with("type", Json::Str("error".into()));
    if let Some(id) = id {
        resp.set("id", Json::U64(id));
    }
    resp.with("code", Json::Str(e.wire_code().into()))
        .with("error", Json::Str(e.to_string()))
}

/// `{"ok":true,"type":"pong"}`.
pub fn pong_response() -> Json {
    Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("pong".into()))
}

/// `{"ok":true,"type":"bye"}`.
pub fn bye_response() -> Json {
    Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("bye".into()))
}

/// `{"ok":true,"type":"stats","metrics":{...}}`.
pub fn stats_response(metrics: Json) -> Json {
    Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("stats".into()))
        .with("metrics", metrics)
}

/// `{"ok":true,"type":"metrics","content_type":...,"exposition":...}` —
/// the Prometheus text exposition, shipped as one JSON string so it stays
/// a single protocol line.
pub fn metrics_response(exposition: String) -> Json {
    Json::obj()
        .with("ok", Json::Bool(true))
        .with("type", Json::Str("metrics".into()))
        .with(
            "content_type",
            Json::Str(swr_telemetry::EXPOSITION_CONTENT_TYPE.into()),
        )
        .with("exposition", Json::Str(exposition))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_from_wire_lines() {
        let r = Request::parse(r#"{"op":"hello","phantom":"ct","base":32,"threads":2}"#)
            .expect("hello parses");
        match r {
            Request::Hello(h) => {
                assert_eq!(h.phantom, "ct");
                assert_eq!(h.base, 32);
                assert_eq!(h.threads, Some(2));
                assert_eq!(h.seed, 42);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(
            r#"{"op":"render","id":9,"angle_y":10.5,"frames":3,"deadline_ms":250,
                "fault":{"panic_at_task":1,"sticky":true}}"#,
        )
        .expect("render parses");
        match r {
            Request::Render(r) => {
                assert_eq!(r.id, 9);
                assert_eq!(r.frames, 3);
                assert_eq!(r.deadline_ms, Some(250));
                let f = r.fault.expect("fault attached");
                assert_eq!(f.panic_at_task, Some(1));
                assert!(f.sticky);
                assert!(f.to_plan().is_armed());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Request::parse(r#"{"op":"ping"}"#).expect("ping"),
            Request::Ping
        );
        assert_eq!(
            Request::parse(r#"{"op":"bye"}"#).expect("bye"),
            Request::Bye
        );
        assert_eq!(
            Request::parse(r#"{"op":"stats"}"#).expect("stats"),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics"}"#).expect("metrics"),
            Request::Metrics
        );
    }

    #[test]
    fn metrics_response_ships_the_exposition_as_one_line() {
        let resp = metrics_response("# TYPE swr_serve_frames counter\n".into());
        let line = resp.to_string();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).expect("metrics response is JSON");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            v.get("content_type").and_then(Json::as_str),
            Some(swr_telemetry::EXPOSITION_CONTENT_TYPE)
        );
        assert!(v
            .get("exposition")
            .and_then(Json::as_str)
            .expect("exposition string")
            .contains("swr_serve_frames"));
    }

    #[test]
    fn malformed_lines_are_typed_protocol_errors() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"render"}"#,
            r#"{"op":"render","id":"seven"}"#,
            r#"{"op":"render","id":1,"fault":7}"#,
        ] {
            let e = Request::parse(bad).expect_err(bad);
            assert!(matches!(e, Error::Protocol { .. }), "{bad}: {e}");
            assert_eq!(e.exit_code(), 4, "{bad}");
        }
    }

    #[test]
    fn responses_are_single_json_lines() {
        let img = FinalImage::new(3, 2);
        let frame = frame_response(4, 0, &img, Quality::Serial, 3, false, 12, true).to_string();
        assert!(!frame.contains('\n'));
        let v = Json::parse(&frame).expect("frame is JSON");
        assert_eq!(v.get("quality").and_then(Json::as_str), Some("serial"));
        assert_eq!(v.get("attempts").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("pixels").and_then(Json::as_str).map(str::len),
            Some(3 * 2 * 4 * 2)
        );
        let err = error_response(
            Some(4),
            &Error::Overloaded {
                reason: "budget".into(),
            },
        )
        .to_string();
        let v = Json::parse(&err).expect("error is JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));
    }

    #[test]
    fn image_hash_tracks_bit_identity() {
        let a = FinalImage::new(4, 4);
        let b = FinalImage::new(4, 4);
        assert_eq!(image_hash(&a), image_hash(&b));
        assert_eq!(image_bytes(&a), image_bytes(&b));
        let mut c = FinalImage::new(4, 4);
        c.set(1, 1, [64, 0, 0, 255]);
        assert_ne!(image_hash(&a), image_hash(&c));
        assert_eq!(image_hex(&a).len(), 4 * 4 * 4 * 2);
    }
}
