//! The global worker budget: admission control shared by every session.
//!
//! The budget is a counting semaphore over render workers. A session about
//! to start a parallel render asks for its configured thread count and is
//! granted *whatever is available up to that*, immediately — the service
//! never blocks a session behind another session's render. Zero available
//! permits is the load-shed signal: the caller answers the request with
//! [`Overloaded`](swr_error::Error) instead of queueing unbounded work.
//!
//! Permits travel in a [`Lease`] that releases on drop, so a panicking
//! render (contained by the session supervisor) can never leak budget.

use parking_lot::Mutex;
use std::sync::Arc;

/// A counting semaphore over render-worker slots.
#[derive(Debug)]
pub struct WorkerBudget {
    total: usize,
    available: Mutex<usize>,
}

impl WorkerBudget {
    /// A budget of `total` worker slots (minimum 1).
    pub fn new(total: usize) -> Arc<Self> {
        let total = total.max(1);
        Arc::new(WorkerBudget {
            total,
            available: Mutex::new(total),
        })
    }

    /// The configured slot count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Slots currently leased out.
    pub fn in_use(&self) -> usize {
        self.total - *self.available.lock()
    }

    /// Grants between 1 and `want` slots immediately, or `None` when the
    /// budget is exhausted (the load-shed case). Never blocks.
    pub fn acquire_up_to(self: &Arc<Self>, want: usize) -> Option<Lease> {
        let want = want.max(1);
        let mut avail = self.available.lock();
        if *avail == 0 {
            return None;
        }
        let granted = want.min(*avail);
        *avail -= granted;
        Some(Lease {
            budget: Arc::clone(self),
            granted,
        })
    }
}

/// Held worker slots; returned to the budget on drop.
#[derive(Debug)]
pub struct Lease {
    budget: Arc<WorkerBudget>,
    granted: usize,
}

impl Lease {
    /// How many slots this lease holds.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        *self.budget.available.lock() += self.granted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_clamped_and_released_on_drop() {
        let b = WorkerBudget::new(4);
        assert_eq!(b.total(), 4);
        let a = b.acquire_up_to(3).expect("grant");
        assert_eq!(a.granted(), 3);
        assert_eq!(b.in_use(), 3);
        // Only one slot left: the next asker is clamped, not refused.
        let c = b.acquire_up_to(8).expect("partial grant");
        assert_eq!(c.granted(), 1);
        // Now the budget is exhausted: shed.
        assert!(b.acquire_up_to(1).is_none());
        drop(a);
        assert_eq!(b.in_use(), 1);
        let d = b.acquire_up_to(2).expect("freed slots are reusable");
        assert_eq!(d.granted(), 2);
        drop(c);
        drop(d);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn zero_budget_still_holds_one_slot() {
        let b = WorkerBudget::new(0);
        assert_eq!(b.total(), 1);
        let l = b.acquire_up_to(0).expect("want is clamped up to 1");
        assert_eq!(l.granted(), 1);
    }
}
