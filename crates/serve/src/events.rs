//! Structured operational event log.
//!
//! Every state transition the supervision ladder takes — session open and
//! close, retry rungs, degrade/recover moves, shed decisions, deadline
//! misses, flight-recorder dumps — emits one JSON object on its own line
//! (JSONL), built on the workspace's own [`Json`] value. The log is
//! append-only and grep-friendly: one `rg '"event":"degrade"' events.jsonl`
//! reconstructs a session's quality history, and every line carries the
//! `session`/`request` correlation ids, so events line up with metric
//! increments and flight-recorder spans recorded for the same request.
//!
//! A bounded in-memory ring of the most recent events is always kept (for
//! tests and post-mortem inspection via [`EventLog::recent`]); writing to a
//! file is optional. Emitting never blocks the render path on disk: the
//! file write happens under its own mutex, outside the ring's.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};
use swr_error::Error;
use swr_telemetry::Json;

/// Events retained in the in-memory ring.
pub const RECENT_CAP: usize = 256;

#[derive(Debug)]
struct Inner {
    file: Option<Mutex<File>>,
    recent: Mutex<VecDeque<Json>>,
}

/// Clonable handle to the service's JSONL event stream.
#[derive(Debug, Clone)]
pub struct EventLog(Arc<Inner>);

impl EventLog {
    /// An in-memory-only log (no file sink).
    pub fn in_memory() -> Self {
        EventLog(Arc::new(Inner {
            file: None,
            recent: Mutex::new(VecDeque::new()),
        }))
    }

    /// A log that appends each event line to `path` as well.
    pub fn to_file(path: &str) -> Result<Self, Error> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog(Arc::new(Inner {
            file: Some(Mutex::new(file)),
            recent: Mutex::new(VecDeque::new()),
        })))
    }

    /// Records one event. `request` is absent for session-scoped events
    /// (open/close); `fields` carries event-specific detail (reason codes,
    /// ladder levels, file paths).
    pub fn emit(&self, event: &str, session: u64, request: Option<u64>, fields: &[(&str, Json)]) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut obj = vec![
            ("ts_ms".to_string(), Json::U64(ts_ms)),
            ("event".to_string(), Json::Str(event.to_string())),
            ("session".to_string(), Json::U64(session)),
        ];
        if let Some(r) = request {
            obj.push(("request".to_string(), Json::U64(r)));
        }
        for (k, v) in fields {
            obj.push((k.to_string(), v.clone()));
        }
        let line = Json::Obj(obj);
        if let Some(file) = &self.0.file {
            let mut f = file.lock();
            let _ = writeln!(f, "{line}");
        }
        let mut recent = self.0.recent.lock();
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(line);
    }

    /// The most recent events, oldest first.
    pub fn recent(&self) -> Vec<Json> {
        self.0.recent.lock().iter().cloned().collect()
    }

    /// Events of one kind from the ring, oldest first.
    pub fn recent_of(&self, event: &str) -> Vec<Json> {
        self.recent()
            .into_iter()
            .filter(|e| e.get("event").and_then(Json::as_str) == Some(event))
            .collect()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_correlation_and_custom_fields() {
        let log = EventLog::in_memory();
        log.emit("session_open", 7, None, &[]);
        log.emit(
            "degrade",
            7,
            Some(3),
            &[("to", Json::Str("reduced".into()))],
        );
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        let d = &recent[1];
        assert_eq!(d.get("event").and_then(Json::as_str), Some("degrade"));
        assert_eq!(d.get("session").and_then(Json::as_f64), Some(7.0));
        assert_eq!(d.get("request").and_then(Json::as_f64), Some(3.0));
        assert_eq!(d.get("to").and_then(Json::as_str), Some("reduced"));
        assert!(d.get("ts_ms").and_then(Json::as_f64).is_some());
        assert_eq!(log.recent_of("degrade").len(), 1);
    }

    #[test]
    fn ring_is_bounded_and_file_sink_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("swr-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("events.jsonl");
        let log = EventLog::to_file(path.to_str().expect("utf-8 path")).expect("open sink");
        for i in 0..RECENT_CAP + 10 {
            log.emit("tick", 1, Some(i as u64), &[]);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), RECENT_CAP);
        // Oldest retained event is #10: the first ten were evicted.
        assert_eq!(recent[0].get("request").and_then(Json::as_f64), Some(10.0));
        let text = std::fs::read_to_string(&path).expect("read sink");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), RECENT_CAP + 10);
        for line in lines {
            Json::parse(line).expect("each line is standalone JSON");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
