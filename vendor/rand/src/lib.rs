//! Vendored stand-in for the slice of `rand` 0.9 the workspace uses:
//! `SmallRng::seed_from_u64` plus `Rng::random` for the numeric types the
//! phantom generators draw. Offline build; the generator is xoshiro256++
//! seeded through SplitMix64 (the same construction the real `SmallRng`
//! documents on 64-bit targets), so streams are deterministic per seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of typed values from a bit source (the `StandardUniform`
/// distribution of the real crate, folded into one trait for brevity).
pub trait Distribution: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Distribution for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Distribution for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Distribution for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws one value of type `T`.
    fn random<T: Distribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SmallRng::seed_from_u64(12);
        let z: f64 = c.random();
        let w: f64 = SmallRng::seed_from_u64(11).random();
        assert_ne!(z, w, "different seeds diverge");
    }
}
