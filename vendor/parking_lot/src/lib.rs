//! Vendored stand-in for the `parking_lot` mutex API.
//!
//! The workspace builds offline, so this wraps `std::sync::Mutex` behind
//! `parking_lot`'s poison-free interface: `lock()` returns the guard
//! directly, and a mutex poisoned by a panicking holder is simply re-entered
//! (the protected data's consistency is the caller's concern, exactly as
//! with the real crate).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard lives in an `Option` only so [`Condvar::wait`] can
/// move it through `std`'s by-value wait; it is `Some` at every other
/// moment of the guard's life.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

/// A condition variable with `parking_lot`'s guard-in-place API: `wait`
/// takes `&mut MutexGuard` instead of consuming and returning it, and a
/// wait interrupted by a panicking notifier never observes poison.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while parked and
    /// reacquiring it before returning. Spurious wakeups are possible, as
    /// with every condition variable: callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] exactly as the real crate does; spurious
    /// wakeups remain possible, so callers still loop on their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn lock_after_panicking_holder_succeeds() {
        let m = Mutex::new(7);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("holder dies");
        }));
        assert_eq!(*m.lock(), 7, "no poisoning");
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 8);
    }
}
