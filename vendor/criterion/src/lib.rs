//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds offline, so this provides the API surface the
//! benches use — [`Criterion`], [`BenchmarkId`], benchmark groups, the
//! [`criterion_group!`] / [`criterion_main!`] macros — measuring with plain
//! wall-clock timing and reporting a mean per benchmark. No statistics,
//! plots, or baselines. When `cargo test` drives a bench binary (it passes
//! `--test`), measurement is skipped entirely so the suite stays fast.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&id.to_string(), self.sample_size, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            f,
        );
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(&name, b.mean);
    }

    /// Ends the group (reporting is immediate; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    report(name, b.mean);
}

fn report(name: &str, mean: Duration) {
    println!("{name:<40} {mean:>12.3?}/iter");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // `cargo test` invokes bench binaries with `--test`; there is
            // nothing to verify here, so skip measurement entirely.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| x * x);
            calls += 1;
        });
        g.finish();
        assert_eq!(calls, 1);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
