//! Vendored stand-in for the scoped-thread slice of `crossbeam`.
//!
//! The workspace builds offline, so instead of the real crate it vendors the
//! tiny API surface it actually uses: [`scope`] / [`thread::Scope::spawn`],
//! implemented over `std::thread::scope`. Semantics match what the renderers
//! rely on:
//!
//! * all spawned threads are joined before `scope` returns;
//! * each spawned closure runs under `catch_unwind`, and the first captured
//!   panic payload is surfaced as the `Err` value of [`scope`] (the real
//!   crate propagates unjoined child panics the same way).

pub mod thread;

pub use thread::{scope, Scope};
