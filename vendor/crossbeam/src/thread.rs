//! Scoped threads with panic capture, mirroring `crossbeam::thread`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Panic payload of a child thread.
pub type Payload = Box<dyn Any + Send + 'static>;

/// Scope result: `Err` carries the first child-thread panic payload.
pub type Result<T> = std::result::Result<T, Payload>;

/// A scope handle for spawning threads that may borrow from the enclosing
/// stack frame. Created by [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    panics: Arc<Mutex<Vec<Payload>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope
    /// handle again (so it can spawn nested work, as the real crate allows).
    /// A panicking closure is contained; its payload is reported through the
    /// enclosing [`scope`] call's return value.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        let panics = Arc::clone(&self.panics);
        inner.spawn(move || {
            let scope = Scope {
                inner,
                panics: Arc::clone(&panics),
            };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                let _ = f(&scope);
            })) {
                panics.lock().unwrap_or_else(|e| e.into_inner()).push(p);
            }
        });
    }
}

/// Creates a scope, runs `f` in it, joins every spawned thread, and returns
/// `f`'s value — or `Err` with the first panic payload if any child thread
/// (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
    let body = std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            panics: Arc::clone(&panics),
        };
        catch_unwind(AssertUnwindSafe(|| f(&scope)))
    });
    let mut collected = std::mem::take(&mut *panics.lock().unwrap_or_else(|e| e.into_inner()));
    match body {
        Err(p) => Err(p),
        Ok(r) if collected.is_empty() => Ok(r),
        Ok(_) => Err(collected.swap_remove(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_returns_value() {
        let counter = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_is_reported_not_aborted() {
        let survivors = AtomicUsize::new(0);
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
            s.spawn(|_| survivors.fetch_add(1, Ordering::Relaxed));
        });
        let payload = r.expect_err("panic must surface");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        assert_eq!(survivors.load(Ordering::Relaxed), 1);
    }
}
