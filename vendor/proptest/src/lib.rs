//! Vendored stand-in for the slice of `proptest` the test suite uses.
//!
//! The workspace builds offline, so this reimplements the needed surface:
//! the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, the [`strategy::Strategy`] trait with
//! numeric-range, tuple and `prop_map` combinators, and
//! [`collection::vec`]. Unlike the real crate there is no shrinking; cases
//! are sampled deterministically from a seed derived from the test's module
//! path and name, so a failure reproduces on every run and the reported
//! inputs are enough to write a regression test.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type. The associated `Value` must be
    /// `Debug` so failing inputs can be reported.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
                _out: PhantomData,
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F, O> {
        source: S,
        map: F,
        _out: PhantomData<fn() -> O>,
    }

    impl<S: Strategy, F: Fn(S::Value) -> O, O: Debug> Strategy for Map<S, F, O> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = self.end as u128 - self.start as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + f * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let f = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + f * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of values from `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test execution settings.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; move on to the next case.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Deterministic per-case random source (xoshiro256++ seeded from the
    /// test name), so failures reproduce without a persistence file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            let mut st = h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            TestRng { s }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn` runs `cases` times with freshly
/// sampled arguments; `prop_assert*!` failures report the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed (case {case}): {msg}\n  inputs: {inputs}");
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -1.5f64..2.5, s in 0u64..9) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(s < 9, "s = {}", s);
        }

        #[test]
        fn map_tuple_and_vec_compose(
            dims in (1usize..5, 1usize..5).prop_map(|(a, b)| [a, b]),
            v in crate::collection::vec(0u32..100, 2..6),
        ) {
            prop_assert!(dims[0] < 5 && dims[1] < 5);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(!v.is_empty());
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(k in 0usize..3) {
                    prop_assert!(k > 10, "k too small: {}", k);
                }
            }
            always_fails();
        });
        let p = r.expect_err("must fail");
        let msg = p.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("k too small"), "{msg}");
        assert!(msg.contains("inputs: k ="), "{msg}");
    }
}
