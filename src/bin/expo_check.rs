//! `expo_check` — validates a Prometheus text-exposition scrape produced by
//! `swr-serve` (the `metrics` protocol op or the `--expose` sidecar) against
//! the format the exporter promises: `# HELP`/`# TYPE` headers, cumulative
//! `_bucket{le=...}` series closed by `+Inf`, `_sum`/`_count` pairs, and
//! `_window{quantile=...}` summaries.
//!
//! ```text
//! expo_check scrape.prom              # exit 0 iff valid, prints a summary
//! curl -s $URL/metrics | expo_check   # reads stdin when no path is given
//! expo_check --monotone A.prom B.prom # additionally asserts every counter
//!                                     # in A is <= its value in B
//! ```
//!
//! Exit codes: `0` valid, `1` invalid or unreadable, `2` usage,
//! `3` counter regression in `--monotone` mode.

use shearwarp::telemetry::{validate_exposition, ExpoStats};
use std::io::Read;

fn read_source(path: &str) -> (String, String) {
    if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("expo_check: cannot read stdin: {e}");
            std::process::exit(1);
        }
        ("<stdin>".to_string(), buf)
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => (path.to_string(), text),
            Err(e) => {
                eprintln!("expo_check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn check(path: &str) -> ExpoStats {
    let (source, text) = read_source(path);
    match validate_exposition(&text) {
        Ok(stats) => {
            println!(
                "{source}: ok — {} families, {} samples, {} counter series",
                stats.families,
                stats.samples,
                stats.counters.len()
            );
            stats
        }
        Err(e) => {
            eprintln!("expo_check: {source}: invalid exposition: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            check("-");
        }
        [path] if path != "--monotone" => {
            check(path);
        }
        [flag, first, second] if flag == "--monotone" => {
            let a = check(first);
            let b = check(second);
            // Every counter present in the earlier scrape must still exist
            // and must not have gone backwards — restarts reset to zero,
            // which this deliberately flags.
            let mut regressions = 0usize;
            for (name, va) in &a.counters {
                match b.counters.get(name) {
                    Some(vb) if vb >= va => {}
                    Some(vb) => {
                        eprintln!("expo_check: counter {name} regressed: {va} -> {vb}");
                        regressions += 1;
                    }
                    None => {
                        eprintln!("expo_check: counter {name} vanished between scrapes");
                        regressions += 1;
                    }
                }
            }
            if regressions > 0 {
                std::process::exit(3);
            }
            println!(
                "monotone: ok — {} counter series compared across scrapes",
                a.counters.len()
            );
        }
        _ => {
            eprintln!("usage: expo_check [FILE.prom | -]\n       expo_check --monotone FIRST.prom SECOND.prom");
            std::process::exit(2);
        }
    }
}
