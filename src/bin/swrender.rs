//! `swrender` — command-line shear-warp volume renderer.
//!
//! Renders synthetic phantoms or user-supplied volume files to PPM images,
//! with any of the three renderers (serial, old parallel, new parallel).
//!
//! ```text
//! swrender --phantom mri --base 128 --angle-y 30 -o brain.ppm
//! swrender --raw head.raw --dims 256,256,225 --transfer ct --algorithm new \
//!          --threads 8 --frames 24 --step 15 -o head_
//! ```

//! Exit codes: `0` success, `1` I/O failure, `2` usage / invalid arguments,
//! `3` render fault (worker panic, scheduler stall), `4` service/session
//! error (client mode: shed, blown deadline, failed session).

use shearwarp::prelude::*;
use shearwarp::volume::io::{try_load_raw, try_load_volume};

struct Cli {
    phantom: Option<Phantom>,
    base: usize,
    seed: u64,
    input: Option<String>,
    raw: Option<String>,
    dims: Option<[usize; 3]>,
    transfer: String,
    angle_x: f64,
    angle_y: f64,
    zoom: f64,
    perspective: Option<f64>,
    depth_cue: Option<f32>,
    fast_classify: bool,
    algorithm: String,
    layout: String,
    brick: usize,
    resident_mb: Option<u64>,
    pin: Option<Placement>,
    threads: usize,
    shards: Option<usize>,
    shard_transport: Option<String>,
    shard_kill: Option<usize>,
    shard_crosscheck: Option<String>,
    watchdog_ms: Option<u64>,
    frames: usize,
    step: f64,
    animate: Option<usize>,
    no_pipeline: bool,
    output: String,
    record_trace: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    breakdown: bool,
    simulate: Option<String>,
    bench: bool,
    connect: Option<String>,
    deadline_ms: Option<u64>,
    fault_json: Option<String>,
    stats_json: Option<String>,
    watch: bool,
    watch_interval_ms: u64,
    watch_iters: Option<u64>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            phantom: Some(Phantom::MriBrain),
            base: 96,
            seed: 42,
            input: None,
            raw: None,
            dims: None,
            transfer: "mri".into(),
            angle_x: 15.0,
            angle_y: 30.0,
            zoom: 1.0,
            perspective: None,
            depth_cue: None,
            fast_classify: false,
            algorithm: "new".into(),
            layout: "flat".into(),
            brick: DEFAULT_BRICK_EXTENT,
            resident_mb: None,
            pin: None,
            threads: 4,
            shards: None,
            shard_transport: None,
            shard_kill: None,
            shard_crosscheck: None,
            watchdog_ms: None,
            frames: 1,
            step: 3.0,
            animate: None,
            no_pipeline: false,
            output: "render.ppm".into(),
            record_trace: None,
            metrics: None,
            trace: None,
            breakdown: false,
            simulate: None,
            bench: false,
            connect: None,
            deadline_ms: None,
            fault_json: None,
            stats_json: None,
            watch: false,
            watch_interval_ms: 1000,
            watch_iters: None,
        }
    }
}

impl Cli {
    /// Parallel-renderer configuration with the watchdog override applied
    /// (`--watchdog-ms`, falling back to `SWR_WATCHDOG_MS`; `0` disables).
    fn pcfg(&self) -> ParallelConfig {
        let mut cfg = ParallelConfig::with_procs(self.threads);
        if let Some(ms) = self.watchdog_ms {
            cfg.watchdog_timeout = if ms == 0 {
                None
            } else {
                Some(std::time::Duration::from_millis(ms))
            };
        }
        if let Some(pin) = self.pin {
            cfg.placement = pin;
        }
        cfg
    }
}

fn usage() -> ! {
    eprintln!(
        "swrender — shear-warp volume renderer

input (choose one):
  --phantom mri|ct|ellipsoid   synthetic dataset (default: mri)
  --base N                     phantom base resolution (default 96)
  --seed S                     phantom seed (default 42)
  --input FILE.svol            native volume file
  --raw FILE --dims X,Y,Z      headerless raw u8 volume

rendering:
  --transfer mri|ct|opaque     classification preset (default mri)
  --angle-x D  --angle-y D     view angles in degrees
  --zoom Z                     zoom factor
  --perspective D              perspective projection, eye D voxels from center
  --depth-cue F                depth cueing, F fractional attenuation per slice
  --fast-classify              min-max accelerated classification
  --algorithm serial|old|new   renderer (default new)
  --threads T                  worker threads for parallel renderers
  --pin none|compact|scatter   pin workers to CPUs (default: SWR_PIN env or
                               none; no-op off Linux or when unprivileged)

multi-process rendering:
  --shards N                   render through N separate swr-shard worker
                               processes: each owns a contiguous band of the
                               intermediate image, halo scanlines are routed
                               through the coordinator, and warped spans
                               merge into a final image bit-identical to the
                               in-process renderers (synthetic phantoms only)
  --transport shm|socket       coordinator<->worker byte transport (default
                               shm: shared-memory rings on Linux; socket:
                               Unix-domain sockets, portable + traceable)
  --shard-kill K               chaos: SIGKILL shard K after its first tile
                               of the frame arrives (exercises the repair
                               ladder; output stays bit-identical)
  --shard-crosscheck PATH      also replay the frame's task traces on the
                               paper's page-based SVM model and write a JSON
                               report comparing predicted page traffic
                               (faults + diffs x 4096 B) against measured
                               tile traffic (tiles_routed, bytes_moved)

memory layout:
  --layout flat|bricked        RLE storage layout (default flat); bricked
                               splits each per-axis RLE into BxBxB bricks
                               with per-brick opacity bounds (bit-identical
                               output, better locality + brick skipping)
  --brick B                    brick edge length in voxels (default 32)
  --resident-mb N              stream bricks from a spill file through a
                               clock cache holding at most N MiB resident
                               (implies --layout bricked); prints cache
                               hit/miss/eviction stats after rendering
  --watchdog-ms MS             scheduler stall watchdog for the parallel
                               renderers (0 disables; env SWR_WATCHDOG_MS;
                               default 10000)
  --frames N --step D          rotation animation (N frames, D deg/frame),
                               rendered one frame at a time
  --animate N                  render an N-frame rotation animation on the
                               multi-frame pipeline: persistent worker pool,
                               two frames in flight, in-order delivery
                               (requires --algorithm new)
  --no-pipeline                with --animate: render the same N frames
                               through the per-frame new renderer instead
                               (the non-overlapped contrast case)
  -o, --output PATH            output PPM (prefix when rendering > 1 frame)
  --record-trace PATH          write a swr-trace/1 workload trace of the
                               rendered frames (synthetic phantoms only —
                               replay regenerates the volume from
                               phantom+seed; drive it back through any
                               renderer with `swr-bench --replay PATH`)

telemetry:
  --metrics PATH               write per-frame metrics + totals JSON
  --trace PATH                 write Chrome/Perfetto trace-event JSON
                               (load at https://ui.perfetto.dev)
  --breakdown                  print the per-worker busy/stall/sync table
  --simulate challenge|dash|dsm|origin
                               replay the frame's task traces on a simulated
                               machine instead of rendering natively; spans
                               are in virtual cycles, no PPM is written
                               (requires --algorithm old|new)

render service (client mode):
  --connect HOST:PORT          render through a running swr-serve daemon
                               instead of locally: opens a session for the
                               configured phantom and renders --frames
                               frames remotely (writes PPMs, prints one
                               `frame N quality=... hash=...` line each)
  --deadline-ms MS             per-request deadline sent with the render
  --fault-json JSON            chaos: attach a fault object to the render
                               request, e.g. '{{\"panic_at_task\":1}}'
                               (see crates/serve protocol docs)
  --stats-json PATH            also request the server's stats + metrics and
                               write both replies to PATH as one JSON
                               document (machine-readable ops snapshot)
  --watch                      live view instead of rendering: poll the
                               metrics op and redraw a per-session /
                               per-worker utilization and quality-ladder
                               table until interrupted
  --watch-interval-ms MS       polling period for --watch (default 1000)
  --watch-iters N              stop --watch after N polls (testing/scripts;
                               default: run until interrupted)

benchmarking:
  --bench                      run the wall-clock benchmark sweep (serial vs
                               old vs new across thread counts) and write
                               BENCH_<host>.json; ignores the options above.
                               For flag-level control use the swr-bench binary:
                               cargo run --release -p swr-bench --bin swr-bench"
    );
    std::process::exit(2)
}

fn parse() -> Cli {
    let mut cli = Cli::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--phantom" => {
                cli.phantom = Some(match val("--phantom").as_str() {
                    "mri" => Phantom::MriBrain,
                    "ct" => Phantom::CtHead,
                    "ellipsoid" => Phantom::SolidEllipsoid,
                    other => {
                        eprintln!("unknown phantom {other}");
                        usage()
                    }
                })
            }
            "--base" => {
                cli.base = val("--base").parse().unwrap_or_else(|_| usage());
                if cli.base == 0 {
                    eprintln!("--base must be >= 1");
                    usage()
                }
            }
            "--seed" => cli.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--input" => {
                cli.input = Some(val("--input"));
                cli.phantom = None;
            }
            "--raw" => {
                cli.raw = Some(val("--raw"));
                cli.phantom = None;
            }
            "--dims" => {
                let v: Vec<usize> = val("--dims")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if v.len() != 3 {
                    usage()
                }
                if v.contains(&0) {
                    eprintln!("--dims must all be >= 1, got {},{},{}", v[0], v[1], v[2]);
                    usage()
                }
                cli.dims = Some([v[0], v[1], v[2]]);
            }
            "--transfer" => cli.transfer = val("--transfer"),
            "--angle-x" => cli.angle_x = val("--angle-x").parse().unwrap_or_else(|_| usage()),
            "--angle-y" => cli.angle_y = val("--angle-y").parse().unwrap_or_else(|_| usage()),
            "--zoom" => cli.zoom = val("--zoom").parse().unwrap_or_else(|_| usage()),
            "--perspective" => {
                cli.perspective = Some(val("--perspective").parse().unwrap_or_else(|_| usage()))
            }
            "--depth-cue" => {
                cli.depth_cue = Some(val("--depth-cue").parse().unwrap_or_else(|_| usage()))
            }
            "--fast-classify" => cli.fast_classify = true,
            "--algorithm" => cli.algorithm = val("--algorithm"),
            "--layout" => {
                cli.layout = val("--layout");
                if cli.layout != "flat" && cli.layout != "bricked" {
                    eprintln!("--layout must be flat or bricked, got {}", cli.layout);
                    usage()
                }
            }
            "--brick" => {
                cli.brick = val("--brick").parse().unwrap_or_else(|_| usage());
                if cli.brick == 0 {
                    eprintln!("--brick must be >= 1");
                    usage()
                }
            }
            "--resident-mb" => {
                let mb: u64 = val("--resident-mb").parse().unwrap_or_else(|_| usage());
                if mb == 0 {
                    eprintln!("--resident-mb must be >= 1");
                    usage()
                }
                cli.resident_mb = Some(mb);
                cli.layout = "bricked".into();
            }
            "--pin" => {
                let raw = val("--pin");
                cli.pin = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--pin must be none, compact, or scatter, got {raw}");
                    usage()
                }))
            }
            "--threads" => {
                cli.threads = val("--threads").parse().unwrap_or_else(|_| usage());
                if cli.threads == 0 {
                    eprintln!("--threads must be >= 1");
                    usage()
                }
            }
            "--shards" => {
                cli.shards = Some(val("--shards").parse().unwrap_or_else(|_| usage()));
                if cli.shards == Some(0) {
                    eprintln!("--shards must be >= 1");
                    usage()
                }
            }
            "--transport" => cli.shard_transport = Some(val("--transport")),
            "--shard-kill" => {
                cli.shard_kill = Some(val("--shard-kill").parse().unwrap_or_else(|_| usage()))
            }
            "--shard-crosscheck" => cli.shard_crosscheck = Some(val("--shard-crosscheck")),
            "--watchdog-ms" => {
                cli.watchdog_ms = Some(val("--watchdog-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--frames" => {
                cli.frames = val("--frames").parse().unwrap_or_else(|_| usage());
                if cli.frames == 0 {
                    eprintln!("--frames must be >= 1");
                    usage()
                }
            }
            "--step" => cli.step = val("--step").parse().unwrap_or_else(|_| usage()),
            "--animate" => {
                let n: usize = val("--animate").parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("--animate must be >= 1");
                    usage()
                }
                cli.animate = Some(n);
            }
            "--no-pipeline" => cli.no_pipeline = true,
            "--metrics" => cli.metrics = Some(val("--metrics")),
            "--trace" => cli.trace = Some(val("--trace")),
            "--breakdown" => cli.breakdown = true,
            "--simulate" => cli.simulate = Some(val("--simulate")),
            "--bench" => cli.bench = true,
            "--connect" => cli.connect = Some(val("--connect")),
            "--deadline-ms" => {
                cli.deadline_ms = Some(val("--deadline-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--fault-json" => cli.fault_json = Some(val("--fault-json")),
            "--stats-json" => cli.stats_json = Some(val("--stats-json")),
            "--watch" => cli.watch = true,
            "--watch-interval-ms" => {
                cli.watch_interval_ms = val("--watch-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--watch-iters" => {
                cli.watch_iters = Some(val("--watch-iters").parse().unwrap_or_else(|_| usage()))
            }
            "-o" | "--output" => cli.output = val("--output"),
            "--record-trace" => cli.record_trace = Some(val("--record-trace")),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if cli.watchdog_ms.is_none() {
        if let Ok(ms) = std::env::var("SWR_WATCHDOG_MS") {
            match ms.parse::<u64>() {
                Ok(v) => cli.watchdog_ms = Some(v),
                Err(_) => {
                    eprintln!("SWR_WATCHDOG_MS must be an integer, got {ms:?}");
                    usage()
                }
            }
        }
    }
    cli
}

/// Runs the default wall-clock sweep and writes `BENCH_<host>.json` to the
/// current directory. The dedicated `swr-bench` binary exposes the full set
/// of knobs (base size, thread list, frame counts, output path).
#[cfg(feature = "bench")]
fn run_bench() -> ! {
    use swr_bench::wall::{host_name, run_wall_bench, WallBenchConfig};
    let cfg = WallBenchConfig::default();
    let doc = run_wall_bench(&cfg, |line| eprintln!("{line}"));
    let path = format!("BENCH_{}.json", host_name());
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => {
            eprintln!("wrote {path}");
            std::process::exit(0)
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        }
    }
}

#[cfg(not(feature = "bench"))]
fn run_bench() -> ! {
    eprintln!("swrender: built without the `bench` feature; rebuild with default features");
    std::process::exit(2)
}

/// Client mode (`--connect`): renders through a running `swr-serve` daemon
/// over the `swr-serve/1` line-delimited JSON protocol instead of locally.
/// Writes the received frames as PPMs and prints one
/// `frame N quality=... hash=...` line per frame on stdout. Exits with the
/// class of the worst error response received (the same exit-code table as
/// local rendering: 1 I/O, 2 usage, 3 render fault, 4 service error).
fn run_client(cli: &Cli, addr: &str) -> ! {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use swr_error::wire_exit_code;

    let die = |msg: String, code: i32| -> ! {
        eprintln!("swrender: {msg}");
        std::process::exit(code)
    };
    if cli.watch {
        run_watch(cli, addr);
    }
    if cli.input.is_some() || cli.raw.is_some() {
        die(
            "--connect renders server-side phantoms; --input/--raw are local-only".into(),
            2,
        );
    }
    let phantom = match cli.phantom {
        Some(Phantom::MriBrain) => "mri",
        Some(Phantom::CtHead) => "ct",
        Some(Phantom::SolidEllipsoid) => "ellipsoid",
        None => "mri",
    };
    let fault = cli.fault_json.as_ref().map(|raw| {
        Json::parse(raw).unwrap_or_else(|e| {
            eprintln!("--fault-json is not valid JSON: {e}");
            usage()
        })
    });

    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| die(format!("cannot connect to {addr}: {e}"), 1));
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(120)))
        .unwrap_or_else(|e| die(format!("socket setup failed: {e}"), 1));
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .unwrap_or_else(|e| die(format!("socket setup failed: {e}"), 1)),
    );
    let mut tx = stream;
    let mut send = |doc: &Json| {
        let mut line = doc.to_string();
        line.push('\n');
        tx.write_all(line.as_bytes())
            .unwrap_or_else(|e| die(format!("send failed: {e}"), 1));
    };
    let mut recv = || -> Json {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => die("server closed the connection".into(), 4),
            Ok(_) => {}
            Err(e) => die(format!("receive failed: {e}"), 1),
        }
        Json::parse(line.trim()).unwrap_or_else(|e| die(format!("malformed response line: {e}"), 4))
    };

    let mut hello = Json::obj()
        .with("op", Json::Str("hello".into()))
        .with("phantom", Json::Str(phantom.into()))
        .with("base", Json::U64(cli.base as u64))
        .with("seed", Json::U64(cli.seed))
        .with("transfer", Json::Str(cli.transfer.clone()))
        .with("threads", Json::U64(cli.threads as u64));
    if cli.layout != "flat" {
        hello.set("layout", Json::Str(cli.layout.clone()));
        hello.set("brick", Json::U64(cli.brick as u64));
    }
    if let Some(mb) = cli.resident_mb {
        hello.set("resident_mb", Json::U64(mb));
    }
    send(&hello);
    let hello = recv();
    if hello.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = hello
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("protocol");
        let msg = hello
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("hello refused");
        die(
            format!("server error [{code}]: {msg}"),
            wire_exit_code(code),
        );
    }
    eprintln!(
        "session {} open on {addr} ({} threads granted)",
        hello.get("session").and_then(Json::as_u64).unwrap_or(0),
        hello.get("threads").and_then(Json::as_u64).unwrap_or(0),
    );

    let frames = cli.frames.max(1);
    let mut render = Json::obj()
        .with("op", Json::Str("render".into()))
        .with("id", Json::U64(1))
        .with("angle_x", Json::F64(cli.angle_x))
        .with("angle_y", Json::F64(cli.angle_y))
        .with("zoom", Json::F64(cli.zoom))
        .with("frames", Json::U64(frames as u64))
        .with("step", Json::F64(cli.step))
        .with("want_pixels", Json::Bool(true));
    if let Some(ms) = cli.deadline_ms {
        render.set("deadline_ms", Json::U64(ms));
    }
    if let Some(f) = fault {
        render.set("fault", f);
    }
    send(&render);
    if cli.stats_json.is_some() {
        // The queue is FIFO, so these answer after the render frames.
        send(&Json::obj().with("op", Json::Str("stats".into())));
        send(&Json::obj().with("op", Json::Str("metrics".into())));
    }
    // Responses stream back in order; `bye` marks the end of ours.
    send(&Json::obj().with("op", Json::Str("bye".into())));

    let mut worst = 0;
    let mut stats_doc: Option<Json> = None;
    let mut metrics_doc: Option<Json> = None;
    loop {
        let resp = recv();
        match resp.get("type").and_then(Json::as_str) {
            Some("frame") => {
                let n = resp.get("frame").and_then(Json::as_u64).unwrap_or(0);
                let quality = resp.get("quality").and_then(Json::as_str).unwrap_or("?");
                let attempts = resp.get("attempts").and_then(Json::as_u64).unwrap_or(1);
                let hash = resp.get("hash").and_then(Json::as_str).unwrap_or("?");
                if let Some(img) = decode_frame(&resp) {
                    let path = if frames > 1 {
                        format!("{}{n:04}.ppm", cli.output.trim_end_matches(".ppm"))
                    } else {
                        cli.output.clone()
                    };
                    std::fs::write(&path, img.to_ppm())
                        .unwrap_or_else(|e| die(format!("cannot write {path}: {e}"), 1));
                    eprintln!("frame {n}: {}x{} -> {path}", img.width(), img.height());
                }
                println!("frame {n} quality={quality} attempts={attempts} hash={hash}");
            }
            Some("error") => {
                let code = resp
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("protocol");
                let msg = resp
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown");
                eprintln!("swrender: server error [{code}]: {msg}");
                worst = worst.max(wire_exit_code(code));
            }
            Some("stats") => stats_doc = Some(resp),
            Some("metrics") => metrics_doc = Some(resp),
            Some("bye") => break,
            other => die(format!("unexpected response type {other:?}"), 4),
        }
    }
    if let Some(path) = &cli.stats_json {
        let mut doc = Json::obj().with("server", Json::Str(addr.into()));
        if let Some(s) = stats_doc {
            doc.set("stats", s.get("metrics").cloned().unwrap_or_else(Json::obj));
        }
        if let Some(m) = metrics_doc {
            doc.set(
                "content_type",
                m.get("content_type").cloned().unwrap_or(Json::Null),
            );
            doc.set(
                "exposition",
                m.get("exposition").cloned().unwrap_or(Json::Null),
            );
        }
        std::fs::write(path, format!("{doc}\n"))
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}"), 1));
        eprintln!("stats -> {path}");
    }
    std::process::exit(worst)
}

/// `--connect --watch`: polls the `metrics` op and redraws a compact
/// operational table — sessions, budget, rolling frame-latency quantiles,
/// the quality ladder, per-worker utilization, and per-session degradation
/// levels — parsed client-side from the Prometheus exposition text.
fn run_watch(cli: &Cli, addr: &str) -> ! {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let die = |msg: String, code: i32| -> ! {
        eprintln!("swrender: {msg}");
        std::process::exit(code)
    };
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| die(format!("cannot connect to {addr}: {e}"), 1));
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap_or_else(|e| die(format!("socket setup failed: {e}"), 1));
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .unwrap_or_else(|e| die(format!("socket setup failed: {e}"), 1)),
    );
    let mut tx = stream;
    let mut scrape = 0u64;
    loop {
        scrape += 1;
        let mut line = r#"{"op":"metrics"}"#.to_string();
        line.push('\n');
        tx.write_all(line.as_bytes())
            .unwrap_or_else(|e| die(format!("send failed: {e}"), 1));
        let mut resp_line = String::new();
        match reader.read_line(&mut resp_line) {
            Ok(0) => die("server closed the connection".into(), 4),
            Ok(_) => {}
            Err(e) => die(format!("receive failed: {e}"), 1),
        }
        let resp = Json::parse(resp_line.trim())
            .unwrap_or_else(|e| die(format!("malformed response line: {e}"), 4));
        if resp.get("type").and_then(Json::as_str) != Some("metrics") {
            die(format!("unexpected response to metrics op: {resp}"), 4);
        }
        let expo = resp.get("exposition").and_then(Json::as_str).unwrap_or("");
        let samples = parse_exposition_samples(expo);
        if cli.watch_iters.is_none() {
            // Interactive refresh: clear and repaint. With --watch-iters
            // (scripts, tests) emit plain appended blocks instead.
            print!("\x1b[2J\x1b[H");
        }
        print_watch_table(addr, scrape, &samples);
        let _ = std::io::stdout().flush();
        if let Some(n) = cli.watch_iters {
            if scrape >= n {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(
            cli.watch_interval_ms.max(10),
        ));
    }
    let _ = tx.write_all(b"{\"op\":\"bye\"}\n");
    std::process::exit(0)
}

/// Flattens exposition text into `(sample_name_with_labels, value)` pairs.
fn parse_exposition_samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, val) = l.rsplit_once(' ')?;
            let v = if val == "+Inf" {
                f64::INFINITY
            } else {
                val.parse().ok()?
            };
            Some((name.to_string(), v))
        })
        .collect()
}

fn print_watch_table(addr: &str, scrape: u64, samples: &[(String, f64)]) {
    let g = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    println!("swr-serve @ {addr} — scrape #{scrape}");
    println!(
        "  sessions {:.0} (degraded {:.0})   budget {:.0}/{:.0}   frames {:.0}   errors {:.0}   shed {:.0}",
        g("swr_serve_sessions"),
        g("swr_serve_degraded"),
        g("swr_serve_budget_in_use"),
        g("swr_serve_budget_total"),
        g("swr_serve_frames_total"),
        g("swr_serve_errors_total"),
        g("swr_serve_shed_total"),
    );
    println!(
        "  frame latency ms (window): p50 {:.0} / p95 {:.0} / p99 {:.0}   queue wait p95 {:.0}   steals p95 {:.0}",
        g("swr_serve_frame_latency_ms_window{quantile=\"0.5\"}"),
        g("swr_serve_frame_latency_ms_window{quantile=\"0.95\"}"),
        g("swr_serve_frame_latency_ms_window{quantile=\"0.99\"}"),
        g("swr_serve_queue_wait_ms_window{quantile=\"0.95\"}"),
        g("swr_serve_frame_steals_window{quantile=\"0.95\"}"),
    );
    println!(
        "  quality ladder: full {:.0}  repaired {:.0}  reduced {:.0}  serial {:.0}   retries {:.0}  fallbacks {:.0}  flight dumps {:.0}",
        g("swr_serve_quality_full_total"),
        g("swr_serve_quality_repaired_total"),
        g("swr_serve_quality_reduced_total"),
        g("swr_serve_quality_serial_total"),
        g("swr_serve_retries_total"),
        g("swr_serve_serial_fallbacks_total"),
        g("swr_serve_flight_dumps_total"),
    );
    let utils: Vec<String> = samples
        .iter()
        .filter_map(|(n, v)| {
            let w = n.strip_prefix("swr_serve_util_")?;
            Some(format!("{w} {v:.0}%"))
        })
        .collect();
    if !utils.is_empty() {
        println!("  worker util: {}", utils.join("  "));
    }
    let levels: Vec<String> = samples
        .iter()
        .filter_map(|(n, v)| {
            let id = n
                .strip_prefix("swr_serve_session_")?
                .strip_suffix("_level")?;
            let level = match *v as u64 {
                0 => "full",
                1 => "reduced",
                _ => "serial_only",
            };
            Some(format!("s{id}={level}"))
        })
        .collect();
    if !levels.is_empty() {
        println!("  session levels: {}", levels.join("  "));
    }
}

/// `--shards N`: renders through N separate `swr-shard` worker processes.
/// Each worker owns a contiguous band of the intermediate image; halo
/// scanlines route through the coordinator and the warped spans merge into
/// a final image bit-identical to the in-process renderers. Publishes the
/// hub's traffic counters (`shard.tiles_routed`, `shard.bytes_moved`,
/// `shard.ring_full_spins`) and optionally cross-checks the measured tile
/// traffic against the paper's page-based SVM model (`--shard-crosscheck`).
fn run_sharded(cli: &Cli) -> ! {
    let die = |msg: String| -> ! {
        eprintln!("swrender: {msg}");
        std::process::exit(2)
    };
    let fail = |e: Error| -> ! {
        eprintln!("swrender: {e}");
        std::process::exit(e.exit_code())
    };
    let shards = cli.shards.expect("dispatched on --shards");
    if cli.input.is_some() || cli.raw.is_some() {
        die("--shards renders synthetic phantoms only (workers regenerate the volume from phantom+seed)".into());
    }
    if cli.simulate.is_some() || cli.animate.is_some() || cli.record_trace.is_some() {
        die("--shards cannot be combined with --simulate/--animate/--record-trace".into());
    }
    if cli.layout != "flat" || cli.resident_mb.is_some() {
        die("--shards composites from the flat RLE layout only".into());
    }
    if cli.depth_cue.is_some() || cli.fast_classify {
        die("--shards workers composite with default options; --depth-cue/--fast-classify are single-process only".into());
    }
    if let Some(k) = cli.shard_kill {
        if k >= shards {
            die(format!(
                "--shard-kill {k} is out of range for {shards} shards"
            ));
        }
    }
    let ph = cli.phantom.expect("default phantom");
    let phantom = match ph {
        Phantom::MriBrain => "mri",
        Phantom::CtHead => "ct",
        Phantom::SolidEllipsoid => "ellipsoid",
    };
    let scene = SceneSpec {
        phantom: phantom.into(),
        base: cli.base,
        seed: cli.seed,
        transfer: cli.transfer.clone(),
    };
    let transport = match cli.shard_transport.as_deref() {
        Some(s) => ShardTransport::parse(s).unwrap_or_else(|e| fail(e)),
        None => ShardTransport::default(),
    };
    let tname = match transport {
        ShardTransport::Shm => "shm",
        ShardTransport::Socket => "socket",
    };
    let cfg = ShardConfig {
        shards,
        transport,
        kill_shard: cli.shard_kill,
        ..ShardConfig::default()
    };

    eprintln!("spawning {shards} swr-shard workers ({tname} transport)...");
    let mut renderer = ShardedRenderer::try_new(&scene, cfg).unwrap_or_else(|e| fail(e));

    let dims = ph.paper_dims(cli.base);
    let view_at = |frame: usize| {
        let ay = cli.angle_y + frame as f64 * cli.step;
        let mut view = ViewSpec::new(dims)
            .rotate_x(cli.angle_x.to_radians())
            .rotate_y(ay.to_radians())
            .with_zoom(cli.zoom);
        if let Some(d) = cli.perspective {
            view = view.with_perspective(d);
        }
        (view, ay)
    };

    let frames = cli.frames.max(1);
    let mut reg = MetricsRegistry::new();
    for frame in 0..frames {
        let (view, ay) = view_at(frame);
        let t = std::time::Instant::now();
        let image = renderer.try_render(&view).unwrap_or_else(|e| fail(e));
        let stats = renderer.last_stats.clone();
        reg.inc("shard.frames", 1);
        reg.inc("shard.tiles_routed", stats.tiles_routed);
        reg.inc("shard.bytes_moved", stats.bytes_moved);
        reg.inc("shard.ring_full_spins", stats.ring_full_spins);
        reg.inc("shard.stale_tiles", stats.stale_tiles);
        reg.inc("shard.repaired_bands", stats.repaired_shards.len() as u64);
        if stats.fallback_serial {
            reg.inc("shard.serial_fallbacks", 1);
        }
        let quality = if stats.fallback_serial {
            "serial-fallback".to_string()
        } else if !stats.repaired_shards.is_empty() {
            format!("repaired shards {:?}", stats.repaired_shards)
        } else {
            "full".to_string()
        };
        let path = if frames > 1 {
            format!("{}{frame:04}.ppm", cli.output.trim_end_matches(".ppm"))
        } else {
            cli.output.clone()
        };
        std::fs::write(&path, image.to_ppm()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!(
            "frame {frame} @ {ay:.1}°: {}x{} in {:.1} ms -> {path}  \
             (tiles {} bytes {} spins {} quality {quality})",
            image.width(),
            image.height(),
            t.elapsed().as_secs_f64() * 1e3,
            stats.tiles_routed,
            stats.bytes_moved,
            stats.ring_full_spins,
        );
    }
    reg.set_gauge("shard.alive", renderer.alive() as f64);
    drop(renderer); // orderly Shutdown broadcast + child reaping

    if let Some(path) = &cli.metrics {
        let doc = metrics_json(&reg);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("metrics -> {path}");
    }

    // The cross-check: the same frame, partitioned the same way, replayed on
    // the paper's page-based SVM machine. Page faults + diffs × 4 KB is what
    // a page-granular shared address space would move for this communication
    // pattern; the tile protocol's measured bytes_moved is what the explicit
    // message version actually moved.
    if let Some(path) = &cli.shard_crosscheck {
        use shearwarp::core::{try_capture_frame, CaptureConfig};
        use shearwarp::memsim::{try_replay_svm, SvmConfig};
        eprintln!("replaying frame 0 on the SVM page model for the cross-check...");
        let enc = scene.try_build().unwrap_or_else(|e| fail(e));
        let (view, _) = view_at(0);
        let inter_rows = Factorization::from_view(&view).inter_h;
        let ccfg = CaptureConfig::from_parallel(&ParallelConfig::with_procs(shards), inter_rows);
        let mut cap = try_capture_frame(&enc, &view, &ccfg, true, true).unwrap_or_else(|e| fail(e));
        let profile = cap.profile.clone();
        let workload = cap.new_workload(shards, &profile);
        let svm = SvmConfig::paper();
        let sim = try_replay_svm(&svm, &workload).unwrap_or_else(|e| fail(e));
        let predicted_bytes = (sim.faults + sim.diffs) * svm.page_bytes;
        let measured_per_frame = reg.counter("shard.bytes_moved") / frames as u64;
        let ratio = measured_per_frame as f64 / predicted_bytes.max(1) as f64;
        let doc = Json::obj()
            .with("schema", Json::Str("swr-shard-crosscheck/1".into()))
            .with("shards", Json::U64(shards as u64))
            .with("transport", Json::Str(tname.into()))
            .with("page_bytes", Json::U64(svm.page_bytes))
            .with(
                "predicted",
                Json::obj()
                    .with("page_faults", Json::U64(sim.faults))
                    .with("page_diffs", Json::U64(sim.diffs))
                    .with("bytes_per_frame", Json::U64(predicted_bytes))
                    .with("total_cycles", Json::U64(sim.total_cycles)),
            )
            .with(
                "measured",
                Json::obj()
                    .with("frames", Json::U64(frames as u64))
                    .with("tiles_routed", Json::U64(reg.counter("shard.tiles_routed")))
                    .with("bytes_moved", Json::U64(reg.counter("shard.bytes_moved")))
                    .with("bytes_per_frame", Json::U64(measured_per_frame))
                    .with(
                        "ring_full_spins",
                        Json::U64(reg.counter("shard.ring_full_spins")),
                    ),
            )
            .with("measured_over_predicted", Json::F64(ratio));
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!(
            "crosscheck -> {path}  (svm predicts {predicted_bytes} B/frame, \
             tiles moved {measured_per_frame} B/frame, ratio {ratio:.2})"
        );
    }
    std::process::exit(0)
}

/// Rebuilds a [`FinalImage`] from a frame response's hex `pixels` payload
/// (8 hex digits per RGBA pixel, row-major). `None` when pixels were not
/// requested or the payload is inconsistent with the advertised size.
fn decode_frame(resp: &Json) -> Option<FinalImage> {
    let w = resp.get("width").and_then(Json::as_u64)? as usize;
    let h = resp.get("height").and_then(Json::as_u64)? as usize;
    let hex = resp.get("pixels").and_then(Json::as_str)?;
    if hex.len() != w * h * 8 {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let bytes = hex.as_bytes();
    let mut img = FinalImage::new(w, h);
    for i in 0..w * h {
        let mut px = [0u8; 4];
        for (c, slot) in px.iter_mut().enumerate() {
            let j = i * 8 + c * 2;
            *slot = nibble(bytes[j])? << 4 | nibble(bytes[j + 1])?;
        }
        img.set(i % w, i / w, px);
    }
    Some(img)
}

fn main() {
    let mut cli = parse();
    if cli.record_trace.is_some() {
        // Replay regenerates the dataset from phantom + seed, so only
        // synthetic local renders are recordable.
        if cli.input.is_some() || cli.raw.is_some() {
            eprintln!("--record-trace requires a synthetic --phantom (replay regenerates the volume from phantom+seed)");
            usage()
        }
        if cli.simulate.is_some() || cli.connect.is_some() || cli.bench {
            eprintln!(
                "--record-trace records local renders only (not --simulate/--connect/--bench)"
            );
            usage()
        }
        if cfg!(not(feature = "bench")) {
            eprintln!(
                "swrender: --record-trace needs the `bench` feature; rebuild with default features"
            );
            std::process::exit(2);
        }
    }
    if cli.bench {
        run_bench();
    }
    if let Some(addr) = cli.connect.clone() {
        run_client(&cli, &addr);
    }
    if cli.shards.is_some() {
        run_sharded(&cli);
    }
    if cli.animate.is_some() {
        if cli.algorithm != "new" {
            eprintln!("--animate requires --algorithm new, got {}", cli.algorithm);
            usage()
        }
        if cli.simulate.is_some() {
            eprintln!("--animate cannot be combined with --simulate");
            usage()
        }
        if cli.no_pipeline {
            // The contrast case: same animation, one frame at a time
            // through the existing per-frame loop.
            cli.frames = cli.animate.take().expect("checked");
        }
    }
    let cli = cli;

    // Load or generate the volume.
    let fail = |e: Error| -> ! {
        eprintln!("swrender: {e}");
        std::process::exit(e.exit_code())
    };
    let raw_vol = if let Some(path) = &cli.input {
        try_load_volume(path).unwrap_or_else(|e| fail(e))
    } else if let Some(path) = &cli.raw {
        let dims = cli.dims.unwrap_or_else(|| {
            eprintln!("--raw requires --dims X,Y,Z");
            usage()
        });
        try_load_raw(path, dims).unwrap_or_else(|e| fail(e))
    } else {
        let ph = cli.phantom.expect("default phantom");
        let dims = ph.paper_dims(cli.base);
        eprintln!(
            "generating {:?} phantom {}x{}x{}",
            ph, dims[0], dims[1], dims[2]
        );
        ph.generate(dims, cli.seed)
    };

    let tf = match cli.transfer.as_str() {
        "mri" => TransferFunction::mri_default(),
        "ct" => TransferFunction::ct_default(),
        "opaque" => TransferFunction::opaque_nonzero(),
        other => {
            eprintln!("unknown transfer function {other}");
            usage()
        }
    };

    eprintln!("classifying + run-length encoding...");
    let t0 = std::time::Instant::now();
    let classified = if cli.fast_classify {
        shearwarp::volume::classify_fast(&raw_vol, &tf)
    } else {
        classify(&raw_vol, &tf)
    };
    let enc = EncodedVolume::encode(&classified);
    eprintln!(
        "  {:.1}% transparent, {:.1}x compressed  ({:.2}s)",
        enc.transparent_fraction() * 100.0,
        enc.compression_ratio(),
        t0.elapsed().as_secs_f64()
    );

    // Optional bricked / streamed storage. `src` borrows whichever layout is
    // active; every renderer produces bit-identical output from either.
    let bricked: Option<BrickedVolume> = if cli.layout == "bricked" {
        if cli.simulate.is_some() {
            eprintln!("--simulate replays task traces from the flat layout only");
            usage()
        }
        let t = std::time::Instant::now();
        let vol = match cli.resident_mb {
            Some(mb) => BrickedVolume::from_encoded_streamed(&enc, cli.brick, mb << 20)
                .unwrap_or_else(|e| {
                    eprintln!("swrender: cannot spill bricks to disk: {e}");
                    std::process::exit(1)
                }),
            None => BrickedVolume::from_encoded(&enc, cli.brick),
        };
        eprintln!(
            "  bricked {b}x{b}x{b}: {} run bytes{}  ({:.2}s)",
            vol.storage_bytes(),
            if vol.is_streamed() {
                " spilled to disk, decoded on demand"
            } else {
                " resident"
            },
            t.elapsed().as_secs_f64(),
            b = cli.brick,
        );
        Some(vol)
    } else {
        None
    };
    let src = match &bricked {
        Some(b) => VolumeSrc::Bricked(b),
        None => VolumeSrc::Flat(&enc),
    };

    enum AnyRenderer {
        Serial(Box<SerialRenderer>),
        Old(Box<OldParallelRenderer>),
        New(Box<NewParallelRenderer>),
    }
    let composite_opts = shearwarp::render::CompositeOpts {
        depth_cue: cli.depth_cue.map(|per_slice| shearwarp::render::DepthCue {
            front: 1.0,
            per_slice,
        }),
        ..Default::default()
    };
    let mut renderer = match cli.algorithm.as_str() {
        "serial" => {
            let mut r = SerialRenderer::new();
            r.opts = composite_opts;
            AnyRenderer::Serial(Box::new(r))
        }
        "old" => {
            let mut r = OldParallelRenderer::new(cli.pcfg());
            r.composite_opts = composite_opts;
            AnyRenderer::Old(Box::new(r))
        }
        "new" => {
            let mut r = NewParallelRenderer::new(cli.pcfg());
            r.composite_opts = composite_opts;
            AnyRenderer::New(Box::new(r))
        }
        other => {
            eprintln!("unknown algorithm {other}");
            usage()
        }
    };

    let dims = raw_vol.dims();
    let view_at = |frame: usize| {
        let ay = cli.angle_y + frame as f64 * cli.step;
        let mut view = ViewSpec::new(dims)
            .rotate_x(cli.angle_x.to_radians())
            .rotate_y(ay.to_radians())
            .with_zoom(cli.zoom);
        if let Some(d) = cli.perspective {
            view = view.with_perspective(d);
        }
        (view, ay)
    };

    // Workload trace capture: one record per delivered frame, stamped with
    // the live inter-frame gap so `swr-bench --replay --mode realtime` can
    // reproduce the recorded pacing.
    #[cfg(feature = "bench")]
    let mut trace_rec = cli.record_trace.as_ref().map(|_| {
        let phantom_name = match cli.phantom.expect("validated: phantom input") {
            Phantom::MriBrain => "mri",
            Phantom::CtHead => "ct",
            Phantom::SolidEllipsoid => "ellipsoid",
        };
        swr_bench::trace::TraceRecorder::new(swr_bench::trace::TraceHeader {
            phantom: phantom_name.into(),
            base: cli.base,
            seed: cli.seed,
            transfer: cli.transfer.clone(),
            threads: cli.threads,
            renderer: if cli.animate.is_some() {
                "new_pipelined".into()
            } else {
                cli.algorithm.clone()
            },
        })
    });

    let mut telemetry: Vec<FrameTelemetry> = Vec::new();
    if let Some(nframes) = cli.animate {
        // Pipelined animation: the pool persists across frames and frame
        // N+1's compositing overlaps frame N's warp. Frames arrive in
        // order on this thread while later frames are still rendering.
        let mut pipe = AnimationPipeline::new(cli.pcfg());
        pipe.composite_opts = composite_opts;
        let views: Vec<ViewSpec> = (0..nframes).map(|f| view_at(f).0).collect();
        let t0 = std::time::Instant::now();
        pipe.try_render_animation_src(src, &views, |frame, image, _stats| {
            let path = if nframes > 1 {
                format!("{}{frame:04}.ppm", cli.output.trim_end_matches(".ppm"))
            } else {
                cli.output.clone()
            };
            std::fs::write(&path, image.to_ppm()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1)
            });
            eprintln!(
                "frame {frame} @ {:.1}°: {}x{} delivered at +{:.1} ms -> {path}",
                cli.angle_y + frame as f64 * cli.step,
                image.width(),
                image.height(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            #[cfg(feature = "bench")]
            if let Some(rec) = trace_rec.as_mut() {
                rec.record(
                    cli.angle_x,
                    cli.angle_y + frame as f64 * cli.step,
                    cli.zoom,
                    cli.perspective,
                );
            }
        })
        .unwrap_or_else(|e| fail(e));
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "{nframes} frames in {:.1} ms pipelined on {} threads ({:.1} fps)",
            secs * 1e3,
            cli.threads,
            nframes as f64 / secs.max(1e-9)
        );
        telemetry = std::mem::take(&mut pipe.telemetry);
    } else if let Some(platform) = &cli.simulate {
        simulate(&cli, platform, &enc, &view_at, &mut telemetry).unwrap_or_else(|e| fail(e));
    } else {
        for frame in 0..cli.frames.max(1) {
            let (view, ay) = view_at(frame);
            let t = std::time::Instant::now();
            // Route faults by class: worker panics and scheduler stalls exit 3,
            // bad views 2, rather than unwinding out of main.
            let image = match &mut renderer {
                AnyRenderer::Serial(r) => r.try_render_src(src, &view),
                AnyRenderer::Old(r) => r.try_render_with_stats_src(src, &view).map(|(i, _)| i),
                AnyRenderer::New(r) => r.try_render_with_stats_src(src, &view).map(|(i, _)| i),
            }
            .unwrap_or_else(|e| fail(e));
            if let Some(t) = match &mut renderer {
                AnyRenderer::Serial(r) => r.last_telemetry.take(),
                AnyRenderer::Old(r) => r.last_telemetry.take(),
                AnyRenderer::New(r) => r.last_telemetry.take(),
            } {
                telemetry.push(t);
            }
            let path = if cli.frames > 1 {
                format!("{}{frame:04}.ppm", cli.output.trim_end_matches(".ppm"))
            } else {
                cli.output.clone()
            };
            std::fs::write(&path, image.to_ppm()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1)
            });
            eprintln!(
                "frame {frame} @ {ay:.1}°: {}x{} in {:.1} ms -> {path}",
                image.width(),
                image.height(),
                t.elapsed().as_secs_f64() * 1e3
            );
            #[cfg(feature = "bench")]
            if let Some(rec) = trace_rec.as_mut() {
                rec.record(cli.angle_x, ay, cli.zoom, cli.perspective);
            }
        }
    }

    // One grep-friendly line for CI budget assertions: peak never exceeds
    // the (clamped) budget by construction of the reserve-before-admit cache.
    if let Some(stats) = bricked.as_ref().and_then(|v| v.cache_stats()) {
        eprintln!(
            "brick cache: hits={} misses={} evictions={} resident_bytes={} peak_resident_bytes={} budget_bytes={} within_budget={}",
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.resident_bytes,
            stats.peak_resident_bytes,
            stats.budget_bytes,
            stats.peak_resident_bytes <= stats.budget_bytes,
        );
    }

    #[cfg(feature = "bench")]
    if let (Some(path), Some(rec)) = (cli.record_trace.as_ref(), trace_rec.take()) {
        let trace = rec.finish();
        std::fs::write(path, trace.to_lines()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("recorded {} frames -> {path}", trace.frames.len());
    }

    write_telemetry(&cli, &telemetry);
}

/// Replays the frame's captured task traces on a simulated shared-address-
/// space machine (virtual time, cycle-unit spans) instead of rendering
/// natively. The machine persists across animation frames so caches stay
/// warm, as in the paper's steady-state measurements; for the new algorithm
/// each frame is partitioned with the previous frame's measured work
/// profile, exactly as the animation loop would.
fn simulate(
    cli: &Cli,
    platform: &str,
    enc: &EncodedVolume,
    view_at: &dyn Fn(usize) -> (ViewSpec, f64),
    telemetry: &mut Vec<FrameTelemetry>,
) -> Result<()> {
    use shearwarp::core::{try_capture_frame, CaptureConfig};
    use shearwarp::memsim::{Machine, Platform};

    let platform = match platform {
        "challenge" => Platform::challenge(),
        "dash" => Platform::dash(),
        "dsm" => Platform::ideal_dsm(),
        "origin" => Platform::origin2000(),
        other => {
            eprintln!("unknown platform {other} (want challenge|dash|dsm|origin)");
            usage()
        }
    };
    let new_alg = match cli.algorithm.as_str() {
        "new" => true,
        "old" => false,
        other => {
            eprintln!("--simulate requires --algorithm old|new, got {other}");
            usage()
        }
    };
    let pcfg = cli.pcfg();
    let mut machine = Machine::new(platform, cli.threads);
    let mut prev_profile: Option<Vec<u64>> = None;
    for frame in 0..cli.frames.max(1) {
        let (view, ay) = view_at(frame);
        let inter_rows = shearwarp::geom::Factorization::from_view(&view).inter_h;
        let cfg = CaptureConfig::from_parallel(&pcfg, inter_rows);
        let mut cap = try_capture_frame(enc, &view, &cfg, true, new_alg)?;
        let workload = if new_alg {
            let h = cap.factorization().inter_h;
            let profile = match &prev_profile {
                Some(prev) => fit_profile(prev, h),
                None => cap.profile.clone(), // first frame: self-profile
            };
            prev_profile = Some(cap.profile.clone());
            cap.new_workload(cli.threads, &profile)
        } else {
            cap.old_workload(cli.threads)
        };
        let (r, t) = machine.try_run_frame_traced(&workload)?;
        eprintln!(
            "frame {frame} @ {ay:.1}°: {} cycles on {} procs (busy {}, steals {}, miss/1k {:.1})",
            r.total_cycles,
            cli.threads,
            r.busy_total(),
            r.steals,
            r.miss_rate() * 1000.0
        );
        telemetry.push(t);
    }
    Ok(())
}

/// Rescales the previous frame's per-scanline work profile to this frame's
/// intermediate height (nearest-sample), mirroring the §4.2 prediction step.
fn fit_profile(prev: &[u64], h: usize) -> Vec<u64> {
    if prev.is_empty() || h == 0 {
        return vec![0; h];
    }
    (0..h).map(|i| prev[i * prev.len() / h]).collect()
}

/// Writes `--metrics` / `--trace` documents and prints `--breakdown` tables
/// for every frame that produced telemetry.
fn write_telemetry(cli: &Cli, telemetry: &[FrameTelemetry]) {
    let needs = cli.metrics.is_some() || cli.trace.is_some() || cli.breakdown;
    if !needs {
        return;
    }
    if telemetry.is_empty() {
        eprintln!("swrender: no telemetry was collected (nothing rendered?)");
        std::process::exit(1);
    }
    let refs: Vec<&FrameTelemetry> = telemetry.iter().collect();
    if let Some(path) = &cli.metrics {
        let doc = run_metrics_json(&refs);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("metrics -> {path}");
    }
    if let Some(path) = &cli.trace {
        let doc = chrome_trace(&refs);
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("trace -> {path} (load at https://ui.perfetto.dev)");
    }
    if cli.breakdown {
        for t in telemetry {
            print!("{}", breakdown_table(t));
        }
    }
}
