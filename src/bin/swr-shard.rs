//! `swr-shard` — one shard worker of the multi-process sharded renderer.
//!
//! Never launched by hand: the coordinator ([`swr_shard::ShardedRenderer`],
//! reachable via `swrender --shards N`) spawns one of these per shard and
//! hands it a link through the environment (`SWR_SHARD_ID`,
//! `SWR_SHARD_TRANSPORT`, and either `SWR_SHARD_SHM_FD`/`SWR_SHARD_SHM_CAP`
//! or `SWR_SHARD_SOCK`). The worker composites its owned band of the
//! intermediate image, exchanges halo scanlines through the coordinator,
//! warps the band's final pixels, and streams the spans back.
//!
//! Exit codes follow [`swr_shard::Error::exit_code`]; a clean shutdown
//! (Shutdown frame or coordinator EOF) exits 0.

fn main() {
    if let Err(e) = swr_shard::worker::run_worker() {
        eprintln!("swr-shard: {e}");
        std::process::exit(e.exit_code());
    }
}
