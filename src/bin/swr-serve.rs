//! `swr-serve` — the fault-isolated shear-warp render daemon.
//!
//! Listens on a TCP socket speaking the line-delimited JSON protocol
//! `swr-serve/1` (see `crates/serve`). Each connection is a supervised
//! session with per-request deadlines, a retry ladder (parallel → parallel
//! retry → bit-identical serial fallback → typed error), global worker
//! admission control, and a graceful-degradation quality ladder. A fault
//! in one session never takes down another session or the daemon.
//!
//! ```text
//! swr-serve --addr 127.0.0.1:7421 --budget 8
//! ```
//!
//! Exit codes: `0` clean shutdown (SIGTERM/SIGINT), `1` I/O failure,
//! `2` usage, `4` service failure.

use std::sync::atomic::Ordering;
use std::time::Duration;
use swr_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "swr-serve — shear-warp render service (protocol swr-serve/1)

  --addr HOST:PORT        listen address (default 127.0.0.1:0, port printed
                          on stdout as `listening on ...`)
  --budget N              global worker budget shared by all sessions
                          (default 8); exhaustion sheds requests
  --session-threads N     per-session worker ceiling (default 4)
  --queue-depth N         per-session pending-request bound (default 16);
                          overflow is shed with a typed `overloaded`
  --deadline-ms MS        default per-request deadline (default 30000)
  --watchdog-ms MS        scheduler watchdog ceiling, clamped per render to
                          the remaining deadline (0 disables; env
                          SWR_WATCHDOG_MS; default 10000)
  --degrade-after N       consecutive faulted/shed requests before a session
                          steps down the quality ladder (default 3)
  --recover-after N       consecutive healthy requests before it steps back
                          up (default 2)
  --expose HOST:PORT      sidecar HTTP listener serving the Prometheus text
                          exposition (port printed as `exposing on ...`);
                          scrapes never stall renders
  --event-log PATH        append structured JSONL operational events
                          (session open/close, retries, degrade/recover,
                          sheds, flight dumps) to PATH
  --flight-dir PATH|none  directory for flight-recorder forensics dumps
                          (Chrome-trace JSON of the last spans per worker,
                          written on watchdog trips, worker panics, and
                          session failures; default <tmp>/swr-flight;
                          `none` disables)

SIGTERM or SIGINT shuts the daemon down cleanly: live sockets are closed,
in-flight requests finish, and the process exits 0."
    );
    std::process::exit(2)
}

/// Async-signal-safe shutdown flag, raised by the SIGTERM/SIGINT handler.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: anything more is off-limits in a handler.
        STOP.store(true, Ordering::Release);
    }

    // The environment has no libc crate, so bind the one symbol needed
    // directly. `sighandler_t` is pointer-sized on every Linux target.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` doing only an
        // atomic store, which is async-signal-safe; the handler address
        // stays valid for the life of the process.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static STOP: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn parse() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    if let Ok(ms) = std::env::var("SWR_WATCHDOG_MS") {
        match ms.parse::<u64>() {
            Ok(0) => cfg.watchdog = Duration::from_secs(3600),
            Ok(ms) => cfg.watchdog = Duration::from_millis(ms),
            Err(_) => {
                eprintln!("SWR_WATCHDOG_MS must be an integer, got {ms:?}");
                usage()
            }
        }
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("flag {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--budget" => cfg.budget = val("--budget").parse().unwrap_or_else(|_| usage()),
            "--session-threads" => {
                cfg.max_threads_per_session =
                    val("--session-threads").parse().unwrap_or_else(|_| usage());
                if cfg.max_threads_per_session == 0 {
                    eprintln!("--session-threads must be >= 1");
                    usage()
                }
            }
            "--queue-depth" => {
                cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = val("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--watchdog-ms" => {
                let ms: u64 = val("--watchdog-ms").parse().unwrap_or_else(|_| usage());
                // The service always needs *a* stall bound (deadlines depend
                // on it); "disabled" maps to an hour, effectively off.
                cfg.watchdog = if ms == 0 {
                    Duration::from_secs(3600)
                } else {
                    Duration::from_millis(ms)
                };
            }
            "--degrade-after" => {
                cfg.degrade_after = val("--degrade-after").parse().unwrap_or_else(|_| usage())
            }
            "--recover-after" => {
                cfg.recover_after = val("--recover-after").parse().unwrap_or_else(|_| usage())
            }
            "--expose" => cfg.expose = Some(val("--expose")),
            "--event-log" => cfg.event_log = Some(val("--event-log")),
            "--flight-dir" => {
                let dir = val("--flight-dir");
                cfg.flight_dir = if dir == "none" { None } else { Some(dir) };
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    cfg
}

fn main() {
    let cfg = parse();
    // Worker panics are contained by the supervision ladder and answered
    // with typed responses; log them as one line, not a backtrace per
    // injected fault.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("swr-serve: contained panic: {info}");
    }));
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swr-serve: {e}");
            std::process::exit(e.exit_code())
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swr-serve: {e}");
            std::process::exit(e.exit_code())
        }
    };
    // Announced on stdout so harnesses can scrape the ephemeral port.
    println!("listening on {addr}");
    if let Some(ea) = server.expose_addr() {
        println!("exposing on {ea}");
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();

    sig::install();
    let stop = server.stop_flag();
    std::thread::spawn(move || loop {
        if sig::STOP.load(Ordering::Acquire) {
            stop.store(true, Ordering::Release);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });

    match server.run() {
        Ok(()) => {
            eprintln!("swr-serve: clean shutdown");
        }
        Err(e) => {
            eprintln!("swr-serve: {e}");
            std::process::exit(e.exit_code())
        }
    }
}
