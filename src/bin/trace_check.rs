//! `trace_check` — validates a Chrome/Perfetto trace-event JSON document
//! produced by `swrender --trace` (or any telemetry exporter) against the
//! schema the exporters promise: a `traceEvents` array whose entries carry
//! `name`/`ph`/`pid`/`tid`, with `ts` + `dur` on every complete event.
//!
//! ```text
//! trace_check out.trace.json           # exit 0 iff valid, prints a summary
//! swrender ... --trace - | trace_check # reads stdin when no path is given
//! ```
//!
//! Exit codes: `0` valid, `1` invalid or unreadable, `2` usage.

use shearwarp::telemetry::{validate_chrome_trace, Json};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, text) = match args.as_slice() {
        [] | [_] if args.first().map(String::as_str) == Some("-") || args.is_empty() => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("trace_check: cannot read stdin: {e}");
                std::process::exit(1);
            }
            ("<stdin>".to_string(), buf)
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(text) => (path.clone(), text),
            Err(e) => {
                eprintln!("trace_check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: trace_check [FILE.trace.json | -]");
            std::process::exit(2);
        }
    };

    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_check: {source}: not valid JSON: {e}");
        std::process::exit(1);
    });
    match validate_chrome_trace(&doc) {
        Ok(complete) => {
            let unit = doc
                .get("otherData")
                .and_then(|o| o.get("unit"))
                .and_then(Json::as_str)
                .unwrap_or("?");
            println!("{source}: ok — {complete} complete events (unit: {unit})");
        }
        Err(e) => {
            eprintln!("trace_check: {source}: invalid trace: {e}");
            std::process::exit(1);
        }
    }
}
