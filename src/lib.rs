//! # shearwarp
//!
//! A reproduction of *"Improving Parallel Shear-Warp Volume Rendering on
//! Shared Address Space Multiprocessors"* (Jiang & Singh, PPoPP 1997) as a
//! Rust library.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`geom`] — viewing transforms and the shear-warp factorization.
//! * [`volume`] — voxel volumes, classification, run-length encoding, and
//!   synthetic MRI/CT phantoms.
//! * [`render`] — the serial shear-warp renderer (compositing + warp) with
//!   per-scanline work profiling and memory-tracing hooks.
//! * [`raycast`] — the baseline octree ray caster the paper compares against.
//! * [`core`] — the paper's contribution: the *old* (interleaved chunks +
//!   tiled warp) and *new* (profiled contiguous partitions, partition-
//!   preserving warp) parallel algorithms, with native threaded executors
//!   and task-level trace capture.
//! * [`memsim`] — trace-driven multiprocessor memory-system simulation:
//!   cache hierarchies with miss classification, platform cost models
//!   (Challenge / DASH / ideal DSM / Origin2000), and a page-based
//!   shared-virtual-memory (HLRC) model.
//! * [`telemetry`] — per-worker span tracing, a metrics registry, and
//!   exporters (Chrome/Perfetto trace-event JSON, per-worker breakdown
//!   tables, metrics JSON) shared by the native renderers and the memsim
//!   replay scheduler.
//! * [`serve`] — the fault-isolated render service: a line-delimited JSON
//!   protocol, per-session supervision (deadlines, retry ladder, admission
//!   control, graceful degradation), and the shared worker budget behind
//!   the `swr-serve` daemon.
//! * [`shard`] — multi-process sharded compositing: a distributed
//!   framebuffer where separate `swr-shard` worker processes own contiguous
//!   bands of the intermediate image, exchange halo scanlines over
//!   shared-memory rings or Unix sockets, and stream warped spans back to a
//!   coordinator for a bit-identical deterministic merge.
//!
//! ## Quickstart
//!
//! ```
//! use shearwarp::prelude::*;
//!
//! // A small synthetic MRI brain, classified and run-length encoded.
//! let vol = Phantom::MriBrain.generate([32, 32, 24], 42);
//! let classified = classify(&vol, &TransferFunction::mri_default());
//! let encoded = EncodedVolume::encode(&classified);
//!
//! // Render one frame.
//! let view = ViewSpec::new(vol.dims()).rotate_y(0.4);
//! let mut renderer = SerialRenderer::new();
//! let image = renderer.render(&encoded, &view);
//! assert_eq!(image.width(), Factorization::from_view(&view).final_w);
//! ```

pub use swr_core as core;
pub use swr_geom as geom;
pub use swr_memsim as memsim;
pub use swr_raycast as raycast;
pub use swr_render as render;
pub use swr_serve as serve;
pub use swr_shard as shard;
pub use swr_telemetry as telemetry;
pub use swr_volume as volume;

pub use swr_error::{wire_exit_code, Error, Result};

/// Deterministic fault injection for the parallel renderers (worker panics
/// at the Nth task, corrupted/zeroed work profiles, truncated steal queues).
pub mod fault {
    pub use swr_core::fault::*;
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use swr_core::{
        host_cpus, AnimationPipeline, FaultPlan, NewParallelRenderer, OldParallelRenderer,
        ParallelConfig, Placement, RenderStats,
    };
    pub use swr_error::{Error, Result};
    pub use swr_geom::{Affine2, Axis, Factorization, Mat4, Vec3, ViewSpec};
    pub use swr_render::{FinalImage, SerialRenderer, Tracer, VolumeSrc};
    pub use swr_shard::{SceneSpec, ShardConfig, ShardTransport, ShardedRenderer};
    pub use swr_telemetry::{
        breakdown_table, chrome_trace, metrics_json, run_metrics_json, validate_chrome_trace,
        FrameTelemetry, Json, MetricsRegistry,
    };
    pub use swr_volume::{
        classify, BrickedVolume, ClassifiedVolume, EncodedVolume, Phantom, TransferFunction,
        Volume, DEFAULT_BRICK_EXTENT,
    };
}
